//! Positioned-read byte sources backing a container reader.
//!
//! A [`ByteSource`] is the minimal random-access contract the reader needs:
//! total length plus exact reads at absolute offsets, callable concurrently
//! (`&self`, `Sync`) so parallel decodes can fetch blocks simultaneously.
//! Three implementations cover the practical spectrum:
//!
//! * [`FileSource`] — an on-disk container, served by `pread`-style
//!   positioned reads (no shared cursor, no locking on Unix);
//! * [`MemorySource`] — an in-memory container (tests, network buffers);
//! * [`CountingSource`] — a transparent wrapper that tallies read traffic,
//!   used by the benchmark harness and tests to *prove* out-of-core queries
//!   touch only a fraction of the file.

use std::fs::File;
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use stz_telemetry::{Counter, Histogram};

/// Per-transport read telemetry: calls, bytes, and positioned-read
/// latency, registered in the process-wide [`stz_telemetry::global`]
/// registry under a `transport` label.
struct ReadMetrics {
    calls: Arc<Counter>,
    bytes: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl ReadMetrics {
    fn resolve(transport: &'static str) -> ReadMetrics {
        let reg = stz_telemetry::global();
        let labels = [("transport", transport)];
        ReadMetrics {
            calls: reg.counter("stz_stream_read_calls_total", &labels),
            bytes: reg.counter("stz_stream_read_bytes_total", &labels),
            latency: reg.latency("stz_stream_read_latency_ns", &labels),
        }
    }

    fn record(&self, len: usize, started: std::time::Instant) {
        self.calls.inc();
        self.bytes.add(len as u64);
        self.latency.record_duration(started.elapsed());
    }
}

fn file_metrics() -> &'static ReadMetrics {
    static M: OnceLock<ReadMetrics> = OnceLock::new();
    M.get_or_init(|| ReadMetrics::resolve("file"))
}

fn memory_metrics() -> &'static ReadMetrics {
    static M: OnceLock<ReadMetrics> = OnceLock::new();
    M.get_or_init(|| ReadMetrics::resolve("memory"))
}

/// Random access over a container's bytes.
///
/// All methods take `&self` and implementations are `Sync`, so one source
/// can serve many readers concurrently — the contract the archive server
/// relies on to share one open container across connections.
pub trait ByteSource: Send + Sync {
    /// Total size in bytes.
    fn len(&self) -> u64;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill `buf` exactly from the bytes starting at `offset`.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Read up to `buf.len()` bytes starting at `offset`, returning how
    /// many were available. Reads past the end are clamped (a read wholly
    /// past the end returns `Ok(0)`); unlike [`read_exact_at`] this never
    /// fails just because the tail is short.
    ///
    /// [`read_exact_at`]: ByteSource::read_exact_at
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        let len = self.len();
        if offset >= len {
            return Ok(0);
        }
        let avail = usize::try_from(len - offset).unwrap_or(usize::MAX).min(buf.len());
        self.read_exact_at(offset, &mut buf[..avail])?;
        Ok(avail)
    }
}

/// Shared handles read through to the underlying source, so a single open
/// container can be cloned cheaply across server connections or worker
/// threads (`Arc<FileSource>` is itself a `ByteSource`).
impl<S: ByteSource + ?Sized> ByteSource for std::sync::Arc<S> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_exact_at(offset, buf)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        (**self).read_at(offset, buf)
    }
}

impl<S: ByteSource + ?Sized> ByteSource for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_exact_at(offset, buf)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        (**self).read_at(offset, buf)
    }
}

impl<S: ByteSource + ?Sized> ByteSource for Box<S> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        (**self).read_exact_at(offset, buf)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        (**self).read_at(offset, buf)
    }
}

/// A container file on disk.
#[derive(Debug)]
pub struct FileSource {
    #[cfg(unix)]
    file: File,
    #[cfg(not(unix))]
    file: std::sync::Mutex<File>,
    len: u64,
}

impl FileSource {
    /// Open `path` for positioned reads.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(not(unix))]
        let file = std::sync::Mutex::new(file);
        Ok(FileSource { file, len })
    }
}

impl ByteSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    #[cfg(unix)]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        let started = std::time::Instant::now();
        self.file.read_exact_at(buf, offset)?;
        file_metrics().record(buf.len(), started);
        Ok(())
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let started = std::time::Instant::now();
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)?;
        file_metrics().record(buf.len(), started);
        Ok(())
    }
}

/// A container held in memory.
#[derive(Debug, Clone)]
pub struct MemorySource {
    bytes: Vec<u8>,
}

impl MemorySource {
    /// Wrap an in-memory container image.
    pub fn new(bytes: Vec<u8>) -> Self {
        MemorySource { bytes }
    }

    /// The underlying image bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl ByteSource for MemorySource {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let started = std::time::Instant::now();
        let start = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset beyond buffer"))?;
        let end = start
            .checked_add(buf.len())
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read beyond buffer"))?;
        buf.copy_from_slice(&self.bytes[start..end]);
        memory_metrics().record(buf.len(), started);
        Ok(())
    }
}

/// Wraps any source and tallies read traffic (per-instance
/// [`stz_telemetry::Counter`]s, not the global registry — each wrapper
/// measures its own source).
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    bytes_read: Counter,
    read_calls: Counter,
}

impl<S: ByteSource> CountingSource<S> {
    /// Wrap `inner`, starting both counters at zero.
    pub fn new(inner: S) -> Self {
        CountingSource { inner, bytes_read: Counter::new(), read_calls: Counter::new() }
    }

    /// Total bytes fetched since construction (or the last reset).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Number of positioned-read calls.
    pub fn read_calls(&self) -> u64 {
        self.read_calls.get()
    }

    /// Zero both counters (e.g. after `ContainerReader::open`, to measure a
    /// single query's traffic).
    pub fn reset(&self) {
        self.bytes_read.reset();
        self.read_calls.reset();
    }

    /// Unwrap, discarding the counters.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ByteSource> ByteSource for CountingSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact_at(offset, buf)?;
        self.bytes_read.add(buf.len() as u64);
        self.read_calls.inc();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_source_bounds() {
        let src = MemorySource::new(vec![1, 2, 3, 4, 5]);
        let mut buf = [0u8; 3];
        src.read_exact_at(1, &mut buf).unwrap();
        assert_eq!(buf, [2, 3, 4]);
        assert!(src.read_exact_at(3, &mut buf).is_err());
        assert!(src.read_exact_at(u64::MAX, &mut buf).is_err());
        assert_eq!(src.len(), 5);
    }

    #[test]
    fn counting_source_tallies() {
        let src = CountingSource::new(MemorySource::new(vec![0u8; 100]));
        let mut buf = [0u8; 10];
        src.read_exact_at(0, &mut buf).unwrap();
        src.read_exact_at(50, &mut buf).unwrap();
        assert_eq!(src.bytes_read(), 20);
        assert_eq!(src.read_calls(), 2);
        src.reset();
        assert_eq!(src.bytes_read(), 0);
    }

    #[test]
    fn read_at_clamps_instead_of_failing() {
        let src = MemorySource::new((0u8..100).collect());
        let mut buf = [0u8; 16];
        assert_eq!(src.read_at(0, &mut buf).unwrap(), 16);
        assert_eq!(buf[..4], [0, 1, 2, 3]);
        // Tail shorter than the buffer: clamped, not an error.
        assert_eq!(src.read_at(92, &mut buf).unwrap(), 8);
        assert_eq!(buf[..8], [92, 93, 94, 95, 96, 97, 98, 99]);
        // Wholly past the end: zero bytes.
        assert_eq!(src.read_at(100, &mut buf).unwrap(), 0);
        assert_eq!(src.read_at(u64::MAX, &mut buf).unwrap(), 0);
    }

    #[test]
    fn shared_handles_are_sources() {
        let src = std::sync::Arc::new(MemorySource::new(vec![7u8; 32]));
        let mut buf = [0u8; 4];
        src.read_exact_at(8, &mut buf).unwrap();
        assert_eq!(buf, [7; 4]);
        assert_eq!(ByteSource::len(&src), 32);
        let by_ref: &MemorySource = &src;
        assert_eq!(ByteSource::len(&by_ref), 32);
        let boxed: Box<dyn ByteSource> = Box::new(MemorySource::new(vec![1u8; 8]));
        assert_eq!(boxed.len(), 8);
        boxed.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(buf, [1; 4]);
    }

    #[test]
    fn file_source_concurrent_positioned_reads() {
        // The racy pattern this API exists to prevent: N threads reading
        // different offsets of one shared file handle must each see their
        // own range, which seek+read on a shared cursor cannot guarantee.
        let path = std::env::temp_dir().join(format!("stz_stream_mt_{}.bin", std::process::id()));
        let image: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &image).unwrap();
        let src = std::sync::Arc::new(FileSource::open(&path).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let src = std::sync::Arc::clone(&src);
                let image = &image;
                scope.spawn(move || {
                    for rep in 0..200usize {
                        let off = (t * 8191 + rep * 131) % (image.len() - 256);
                        let mut buf = [0u8; 256];
                        src.read_exact_at(off as u64, &mut buf).unwrap();
                        assert_eq!(&buf[..], &image[off..off + 256], "thread {t} rep {rep}");
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_source_roundtrip() {
        let path = std::env::temp_dir().join(format!("stz_stream_fs_{}.bin", std::process::id()));
        std::fs::write(&path, (0u8..=255).collect::<Vec<u8>>()).unwrap();
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.len(), 256);
        let mut buf = [0u8; 4];
        src.read_exact_at(10, &mut buf).unwrap();
        assert_eq!(buf, [10, 11, 12, 13]);
        assert!(src.read_exact_at(254, &mut buf).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
