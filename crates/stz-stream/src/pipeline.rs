//! Pipelined container packing: compress on workers, write in order.
//!
//! [`ContainerWriter::add_archive`](crate::ContainerWriter::add_archive) is
//! strictly sequential — sections must land in the file in order. But the
//! *production* of archives (reading a time step, compressing it) is
//! embarrassingly parallel across entries. [`pack_pipelined`] overlaps the
//! two: worker threads run the compression jobs while the calling thread
//! appends each finished archive as soon as it — and all of its
//! predecessors — are done, preserving the exact entry order (and therefore
//! the exact container bytes) of a sequential pack.
//!
//! Memory stays bounded by a sliding window: a worker may not *start* job
//! `i` until `i` is within `window` entries of the write cursor, so at most
//! `window` started-but-unwritten entries (in flight or buffered) exist at
//! any moment — independent of how many entries the container will hold.

use crate::error::Result;
use crate::writer::{ContainerWriter, PackEntry};
use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard};
use stz_field::Scalar;

/// Outcome of one compression job, keyed by its entry index: a named
/// [`PackEntry`] — a native STZ archive or a foreign codec's bytes
/// (`StzArchive` converts via `.into()`). Job failures use
/// [`StreamError`](crate::StreamError) so I/O problems (an unreadable
/// input, say) surface as I/O errors, not payload corruption;
/// `stz_codec::CodecError` converts via `?`.
type JobResult<T> = Result<(String, PackEntry<T>)>;

/// Shared pipeline state: finished jobs waiting for the writer, the write
/// cursor governing the window, and abort/panic bookkeeping.
struct State<T: Scalar> {
    /// Finished jobs not yet written, keyed by entry index.
    done: BTreeMap<usize, JobResult<T>>,
    /// Next entry index the writer will append.
    cursor: usize,
    /// Set when the writer hit an error or a worker panicked; workers stop
    /// picking up new jobs.
    abort: bool,
    /// First worker panic payload, re-raised on the calling thread.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared<T: Scalar> {
    state: Mutex<State<T>>,
    changed: Condvar,
}

impl<T: Scalar> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Pack `jobs` into a container on `out`, compressing on `threads` worker
/// threads while the calling thread appends finished entries **in job
/// order** — the resulting bytes are identical to running every job
/// sequentially through [`ContainerWriter`].
///
/// `run` maps one job to a named archive; it executes on a worker thread
/// (`Sync`, called once per job). Jobs run with entry-level parallelism
/// only — `run` should use the plain serial
/// [`StzCompressor::compress`](stz_core::StzCompressor::compress), since
/// entries already saturate the workers. A failed job aborts the pipeline
/// and returns its error; a panicking job is re-raised on the calling
/// thread after all workers have stopped.
///
/// With `threads <= 1` (or fewer than two jobs) no threads are spawned and
/// jobs run inline, preserving the bounded-memory compress → add → drop
/// loop of a sequential pack.
pub fn pack_pipelined<T, W, J, F>(out: W, jobs: Vec<J>, threads: usize, run: F) -> Result<W>
where
    T: Scalar,
    W: Write,
    J: Send,
    F: Fn(J) -> JobResult<T> + Sync,
{
    let mut writer = ContainerWriter::new(out)?;
    run_pipelined(jobs, threads, run, |name, entry| writer.add_entry(&name, &entry))?;
    writer.finish()
}

/// The pipeline engine behind [`pack_pipelined`], decoupled from the
/// container writer: compress `jobs` on `threads` workers, hand each
/// finished entry to `emit` **in job order** on the calling thread. The
/// mutable-archive append path reuses this to stage parallel ingestion
/// into an existing container, with the same window backpressure and the
/// same ordering guarantee (`emit` sees the exact sequence a serial run
/// would produce).
pub fn run_pipelined<T, J, F, E>(jobs: Vec<J>, threads: usize, run: F, mut emit: E) -> Result<()>
where
    T: Scalar,
    J: Send,
    F: Fn(J) -> JobResult<T> + Sync,
    E: FnMut(String, PackEntry<T>) -> Result<()>,
{
    let total = jobs.len();
    if threads <= 1 || total < 2 {
        for job in jobs {
            let (name, entry) = run(job)?;
            emit(name, entry)?;
        }
        return Ok(());
    }

    let workers = threads.min(total);
    // Started-but-unwritten entries allowed before workers stall (the
    // backpressure condition below is `i < cursor + window`). Two per
    // worker keeps everyone busy across entry-size imbalance while
    // bounding live archives — in flight or awaiting the writer — at
    // `window`.
    let window = workers * 2;

    let jobs: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let next_job = std::sync::atomic::AtomicUsize::new(0);
    let shared: Shared<T> = Shared {
        state: Mutex::new(State { done: BTreeMap::new(), cursor: 0, abort: false, panic: None }),
        changed: Condvar::new(),
    };

    let mut write_error: Option<crate::error::StreamError> = None;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let jobs = &jobs;
            let next_job = &next_job;
            let shared = &shared;
            let run = &run;
            std::thread::Builder::new()
                .name(format!("stz-pack-{w}"))
                .spawn_scoped(scope, move || loop {
                    let i = next_job.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= total {
                        return;
                    }
                    // Window backpressure: wait until entry i is within
                    // `window` of the write cursor.
                    {
                        let mut st = shared.lock();
                        while !st.abort && i >= st.cursor + window {
                            st = shared
                                .changed
                                .wait(st)
                                .unwrap_or_else(|poisoned| poisoned.into_inner());
                        }
                        if st.abort {
                            return;
                        }
                    }
                    let job = jobs[i]
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .take()
                        .expect("each job index is claimed exactly once");
                    match catch_unwind(AssertUnwindSafe(|| run(job))) {
                        Ok(result) => {
                            let mut st = shared.lock();
                            st.done.insert(i, result);
                            shared.changed.notify_all();
                        }
                        Err(payload) => {
                            let mut st = shared.lock();
                            if st.panic.is_none() {
                                st.panic = Some(payload);
                            }
                            st.abort = true;
                            shared.changed.notify_all();
                            return;
                        }
                    }
                })
                .expect("spawning a pack worker cannot fail");
        }

        // The calling thread is the writer: consume entries in order.
        for i in 0..total {
            let result = {
                let mut st = shared.lock();
                loop {
                    if st.abort {
                        break None;
                    }
                    if let Some(r) = st.done.remove(&i) {
                        break Some(r);
                    }
                    st = shared.changed.wait(st).unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            let outcome = match result {
                None => break, // aborted by a worker panic
                Some(Ok((name, entry))) => emit(name, entry),
                Some(Err(e)) => Err(e),
            };
            match outcome {
                Ok(()) => {
                    let mut st = shared.lock();
                    st.cursor = i + 1;
                    shared.changed.notify_all();
                }
                Err(e) => {
                    write_error = Some(e);
                    let mut st = shared.lock();
                    st.abort = true;
                    shared.changed.notify_all();
                    break;
                }
            }
        }
        // Unblock any worker still waiting on the window.
        let mut st = shared.lock();
        st.abort = st.abort || st.cursor < total;
        shared.changed.notify_all();
    });

    if let Some(payload) = shared.lock().panic.take() {
        resume_unwind(payload);
    }
    if let Some(e) = write_error {
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack_to_vec;
    use stz_core::{StzArchive, StzCompressor, StzConfig};
    use stz_field::{Dims, Field};

    fn field(seed: f32) -> Field<f32> {
        Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
            ((z as f32) * 0.2 + seed).sin() + ((y as f32) * 0.1).cos() + x as f32 * 0.01
        })
    }

    fn compress(seed: f32) -> StzArchive<f32> {
        StzCompressor::new(StzConfig::three_level(1e-3)).compress(&field(seed)).unwrap()
    }

    fn pipelined_image(threads: usize, n: usize) -> Vec<u8> {
        pack_pipelined(Vec::new(), (0..n).collect::<Vec<usize>>(), threads, |i| {
            Ok((format!("t{i}"), compress(i as f32).into()))
        })
        .unwrap()
    }

    #[test]
    fn pipelined_bytes_match_sequential_pack() {
        let archives: Vec<StzArchive<f32>> = (0..6).map(|i| compress(i as f32)).collect();
        let named: Vec<(String, &StzArchive<f32>)> =
            archives.iter().enumerate().map(|(i, a)| (format!("t{i}"), a)).collect();
        let refs: Vec<(&str, &StzArchive<f32>)> =
            named.iter().map(|(n, a)| (n.as_str(), *a)).collect();
        let sequential = pack_to_vec(&refs).unwrap();
        for threads in [1, 2, 4, 8] {
            assert_eq!(pipelined_image(threads, 6), sequential, "threads {threads}");
        }
    }

    #[test]
    fn failed_job_aborts_with_its_error() {
        let err =
            pack_pipelined::<f32, _, _, _>(Vec::new(), (0..8).collect::<Vec<usize>>(), 4, |i| {
                if i == 3 {
                    Err(crate::StreamError::Io(std::io::Error::other("job 3 exploded")))
                } else {
                    Ok((format!("t{i}"), compress(i as f32).into()))
                }
            })
            .unwrap_err();
        // The job's own error kind must survive — an I/O failure must not
        // be re-labelled as payload corruption.
        assert!(matches!(err, crate::StreamError::Io(_)), "got: {err}");
        assert!(err.to_string().contains("job 3 exploded"), "got: {err}");
    }

    #[test]
    fn panicking_job_propagates_with_payload() {
        let result = std::panic::catch_unwind(|| {
            pack_pipelined::<f32, _, _, _>(Vec::new(), (0..8).collect::<Vec<usize>>(), 4, |i| {
                if i == 5 {
                    panic!("pack worker boom");
                }
                Ok((format!("t{i}"), compress(i as f32).into()))
            })
        });
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "pack worker boom");
    }

    #[test]
    fn single_job_and_single_thread_run_inline() {
        assert_eq!(pipelined_image(8, 1), pipelined_image(1, 1));
        assert_eq!(pipelined_image(1, 3), pipelined_image(4, 3));
    }
}
