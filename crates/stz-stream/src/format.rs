//! The on-disk container layout.
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────────┐
//! │ 0x00  magic "STZC" │ version u8 │ reserved [u8; 3]                 │ 8 B
//! ├────────────────────────────────────────────────────────────────────┤
//! │ entry payloads, back to back                                       │
//! │   each payload = the raw bytes of one codec archive                │
//! │   (STZ: header · level-1 SZ3 stream · per-level sub-block streams; │
//! │    foreign codecs: the engine's own self-contained archive)        │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ footer: uvarint entry_count, then per entry                        │
//! │   name (length-prefixed) · codec id (u8)                           │
//! │   codec = stz:  archive parameters (type, dims, levels, interp,    │
//! │                 bounds, radius)                                    │
//! │                 payload {off, len, crc32} · level-1 {off,len,crc}  │
//! │                 per finer level: nblocks × {off, len, crc32}       │
//! │   other codecs: type, dims, error bound                            │
//! │                 payload {off, len, crc32}                          │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ trailer (fixed 24 B at EOF):                                       │
//! │   footer_off u64 │ footer_len u64 │ footer_crc32 u32 │ "STZE"      │
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Design notes, in the tradition of seekable production bitstreams:
//!
//! * **Footer-at-end** lets the writer stream payloads forward with bounded
//!   memory — offsets are only known after writing, and a reader finds the
//!   index with two small reads (trailer, then footer) regardless of file
//!   size.
//! * **All archive parameters are duplicated into the footer**, so serving
//!   metadata queries (`inspect`) or planning a region fetch touches zero
//!   payload bytes.
//! * **Per-section CRCs** (not one whole-file checksum) mean a reader that
//!   fetches 2% of the file verifies exactly that 2%.
//! * Offsets are absolute file positions; varint-encoded (the footer for a
//!   4-entry, 3-level container is ~600 bytes).
//! * **Per-entry codec ids** (format v2) let one container mix engines —
//!   e.g. an SZ3 section next to STZ time steps. Version-1 containers
//!   (which predate the codec byte) still parse; every v1 entry is STZ.
//!   Unknown codec ids parse (the foreign index layout is self-describing)
//!   so `inspect` can report them; *decoding* such an entry errors.

use crate::error::{Result, StreamError};
use stz_codec::{ByteReader, ByteWriter};
use stz_core::archive::ArchiveHeader;
use stz_core::level::LevelPlan;
use stz_core::InterpKind;
use stz_field::Dims;

/// Magic bytes opening a container file.
pub const CONTAINER_MAGIC: [u8; 4] = *b"STZC";
/// Magic bytes closing the trailer.
pub const TRAILER_MAGIC: [u8; 4] = *b"STZE";
/// Current *write-once* container format version (v2 added per-entry
/// codec ids). `pack` keeps emitting v2; only the mutable-archive path
/// produces [`MUTABLE_CONTAINER_VERSION`] files.
pub const CONTAINER_VERSION: u8 = 2;
/// Mutable container format version (v3): two shadow generation slots
/// after the header replace the EOF trailer, so commits flip between
/// slots instead of overwriting the only copy of the index pointer.
pub const MUTABLE_CONTAINER_VERSION: u8 = 3;
/// Oldest container format version this reader still parses.
pub const MIN_CONTAINER_VERSION: u8 = 1;
/// Size of the fixed file header.
pub const HEADER_LEN: u64 = 8;
/// Size of the fixed trailer at EOF.
pub const TRAILER_LEN: u64 = 24;
/// Magic bytes opening each v3 generation slot.
pub const GEN_SLOT_MAGIC: [u8; 4] = *b"STZG";
/// Size of one v3 generation slot.
pub const GEN_SLOT_LEN: u64 = 48;
/// Absolute offsets of the two alternating generation slots.
pub const GEN_SLOT_OFFSETS: [u64; 2] = [HEADER_LEN, HEADER_LEN + GEN_SLOT_LEN];
/// First payload byte of a v3 container (header + both slots).
pub const MUTABLE_DATA_START: u64 = HEADER_LEN + 2 * GEN_SLOT_LEN;
/// Upper bound on entries per container (index-bomb guard).
pub const MAX_ENTRIES: u64 = 1 << 20;
/// Upper bound on entry-name length in bytes.
pub const MAX_NAME_LEN: u64 = 4096;

/// Location + integrity of one independently fetchable byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionLoc {
    /// Absolute file offset.
    pub off: u64,
    /// Length in bytes.
    pub len: u64,
    /// CRC-32 of the section bytes.
    pub crc: u32,
}

/// Index detail of a native STZ entry: the archive's parameters plus the
/// location of every independently fetchable section.
#[derive(Debug, Clone)]
pub struct StzDetail {
    /// The archive's parameters, reconstructed without touching the payload.
    pub header: ArchiveHeader,
    /// The level-1 SZ3 stream.
    pub l1: SectionLoc,
    /// Finer-level sub-block streams: `blocks[k - 2][i]` for level `k`,
    /// block `i` (canonical order, matching `LevelPlan`).
    pub blocks: Vec<Vec<SectionLoc>>,
}

impl StzDetail {
    /// Compressed payload bytes needed for levels `1..=k` (the progressive
    /// I/O cost of this entry).
    pub fn bytes_through_level(&self, k: u8) -> u64 {
        if k == 0 {
            return 0;
        }
        let mut total = self.l1.len;
        for level in 2..=k {
            if let Some(blocks) = self.blocks.get(level as usize - 2) {
                total += blocks.iter().map(|b| b.len).sum::<u64>();
            }
        }
        total
    }
}

/// Index detail of a foreign-codec entry: the payload is one opaque,
/// self-contained archive of that codec, so the index carries only what
/// metadata queries need.
#[derive(Debug, Clone, Copy)]
pub struct ForeignDetail {
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub type_tag: u8,
    /// Grid extents of the encoded field.
    pub dims: Dims,
    /// Absolute point-wise error bound the entry was compressed with.
    pub eb: f64,
}

/// Per-codec index detail of one entry.
#[derive(Debug, Clone)]
pub enum EntryDetail {
    /// A native STZ archive with per-section index.
    Stz(StzDetail),
    /// A foreign codec's archive, indexed as a single payload section.
    Foreign(ForeignDetail),
}

/// One archive's index record in the footer.
#[derive(Debug, Clone)]
pub struct EntryRecord {
    /// Entry name (e.g. a field name or time-step label).
    pub name: String,
    /// Codec wire id (`stz_backend::id`); `stz_backend::id::STZ` for native
    /// entries, which are the only ids a v1 container can hold.
    pub codec: u8,
    /// The whole archive payload.
    pub payload: SectionLoc,
    /// Codec-specific index detail.
    pub detail: EntryDetail,
}

impl EntryRecord {
    /// Element type tag (0 = `f32`, 1 = `f64`).
    pub fn type_tag(&self) -> u8 {
        match &self.detail {
            EntryDetail::Stz(d) => d.header.type_tag,
            EntryDetail::Foreign(d) => d.type_tag,
        }
    }

    /// Grid extents of the encoded field.
    pub fn dims(&self) -> Dims {
        match &self.detail {
            EntryDetail::Stz(d) => d.header.dims,
            EntryDetail::Foreign(d) => d.dims,
        }
    }

    /// Absolute error bound at the finest level.
    pub fn eb(&self) -> f64 {
        match &self.detail {
            EntryDetail::Stz(d) => d.header.eb_finest,
            EntryDetail::Foreign(d) => d.eb,
        }
    }

    /// The STZ detail, if this is a native entry.
    pub fn stz_detail(&self) -> Option<&StzDetail> {
        match &self.detail {
            EntryDetail::Stz(d) => Some(d),
            EntryDetail::Foreign(_) => None,
        }
    }

    /// Compressed payload bytes needed for levels `1..=k` (the progressive
    /// I/O cost of this entry). Foreign codecs have no partial levels: any
    /// `k >= 1` costs the whole payload.
    pub fn bytes_through_level(&self, k: u8) -> u64 {
        match &self.detail {
            EntryDetail::Stz(d) => d.bytes_through_level(k),
            EntryDetail::Foreign(_) => {
                if k == 0 {
                    0
                } else {
                    self.payload.len
                }
            }
        }
    }
}

/// One committed generation of a mutable (v3) container: where its footer
/// lives and how far the committed bytes extend.
///
/// Two 48-byte slots at [`GEN_SLOT_OFFSETS`] alternate: a commit writes
/// the *inactive* slot and never touches the active one, so a crash at any
/// byte offset leaves at least one valid slot — the previous generation —
/// intact. Readers pick the valid slot with the highest generation number;
/// a slot whose magic or CRC does not check out is *torn* and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSlot {
    /// Monotonic generation number (first commit = 1).
    pub generation: u64,
    /// Absolute offset of this generation's footer.
    pub footer_off: u64,
    /// Footer length in bytes.
    pub footer_len: u64,
    /// Total committed bytes: everything at or past this offset is
    /// uncommitted staging and must be ignored by readers.
    pub committed_len: u64,
    /// CRC-32 of the footer bytes.
    pub footer_crc: u32,
}

/// Serialize one 48-byte generation slot (magic · generation · footer
/// off/len · committed_len · footer CRC · reserved · slot CRC over the
/// preceding 44 bytes).
pub fn encode_gen_slot(s: &GenSlot) -> [u8; GEN_SLOT_LEN as usize] {
    let mut b = [0u8; GEN_SLOT_LEN as usize];
    b[0..4].copy_from_slice(&GEN_SLOT_MAGIC);
    b[4..12].copy_from_slice(&s.generation.to_le_bytes());
    b[12..20].copy_from_slice(&s.footer_off.to_le_bytes());
    b[20..28].copy_from_slice(&s.footer_len.to_le_bytes());
    b[28..36].copy_from_slice(&s.committed_len.to_le_bytes());
    b[36..40].copy_from_slice(&s.footer_crc.to_le_bytes());
    // b[40..44] reserved, zero.
    let crc = crate::crc::crc32(&b[0..44]);
    b[44..48].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Parse one generation slot. `None` means the slot is torn or never
/// written (bad magic or CRC) — not an error by itself, because the
/// sibling slot may still hold a complete generation.
pub fn parse_gen_slot(b: &[u8; GEN_SLOT_LEN as usize]) -> Option<GenSlot> {
    if b[0..4] != GEN_SLOT_MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(b[44..48].try_into().expect("4 bytes"));
    if crate::crc::crc32(&b[0..44]) != stored {
        return None;
    }
    Some(GenSlot {
        generation: u64::from_le_bytes(b[4..12].try_into().expect("8 bytes")),
        footer_off: u64::from_le_bytes(b[12..20].try_into().expect("8 bytes")),
        footer_len: u64::from_le_bytes(b[20..28].try_into().expect("8 bytes")),
        committed_len: u64::from_le_bytes(b[28..36].try_into().expect("8 bytes")),
        footer_crc: u32::from_le_bytes(b[36..40].try_into().expect("4 bytes")),
    })
}

impl GenSlot {
    /// Whether the slot's ranges are self-consistent for a file of
    /// `file_len` bytes: the footer must sit between the data start and
    /// the committed tail, and the committed tail inside the file. A slot
    /// that fails this is treated the same as a torn one.
    pub fn plausible(&self, file_len: u64) -> bool {
        let Some(footer_end) = self.footer_off.checked_add(self.footer_len) else {
            return false;
        };
        self.generation > 0
            && self.footer_off >= MUTABLE_DATA_START
            && footer_end == self.committed_len
            && self.committed_len <= file_len
    }
}

fn interp_code(interp: InterpKind) -> u8 {
    match interp {
        InterpKind::Linear => 0,
        InterpKind::Cubic => 1,
    }
}

fn put_section(w: &mut ByteWriter, s: &SectionLoc) {
    w.put_uvarint(s.off);
    w.put_uvarint(s.len);
    w.put_u32(s.crc);
}

fn put_dims(w: &mut ByteWriter, dims: Dims) {
    w.put_u8(dims.ndim());
    let [nz, ny, nx] = dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
}

/// Serialize the footer (without trailer), always in the current version's
/// layout.
pub fn encode_footer(entries: &[EntryRecord]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(64 + entries.len() * 160);
    w.put_uvarint(entries.len() as u64);
    for e in entries {
        w.put_block(e.name.as_bytes());
        w.put_u8(e.codec);
        match &e.detail {
            EntryDetail::Stz(d) => {
                let h = &d.header;
                w.put_u8(h.type_tag);
                put_dims(&mut w, h.dims);
                w.put_u8(h.levels);
                w.put_u8(interp_code(h.interp));
                w.put_u8(h.adaptive as u8);
                w.put_f64(h.adaptive_ratio);
                w.put_f64(h.eb_finest);
                w.put_uvarint(h.radius as u64);
                put_section(&mut w, &e.payload);
                put_section(&mut w, &d.l1);
                for level_blocks in &d.blocks {
                    w.put_uvarint(level_blocks.len() as u64);
                    for b in level_blocks {
                        put_section(&mut w, b);
                    }
                }
            }
            EntryDetail::Foreign(d) => {
                w.put_u8(d.type_tag);
                put_dims(&mut w, d.dims);
                w.put_f64(d.eb);
                put_section(&mut w, &e.payload);
            }
        }
    }
    w.finish()
}

fn get_section(r: &mut ByteReader<'_>) -> Result<SectionLoc> {
    Ok(SectionLoc { off: r.get_uvarint()?, len: r.get_uvarint()?, crc: r.get_u32()? })
}

/// Check a section lies inside `[lo, hi)`.
fn check_bounds(s: &SectionLoc, lo: u64, hi: u64, what: &str) -> Result<()> {
    let end = s
        .off
        .checked_add(s.len)
        .ok_or_else(|| StreamError::corrupt(format!("{what} section offset overflow")))?;
    if s.off < lo || end > hi {
        return Err(StreamError::corrupt(format!(
            "{what} section {}..{end} outside {lo}..{hi}",
            s.off
        )));
    }
    Ok(())
}

fn get_type_tag(r: &mut ByteReader<'_>) -> Result<u8> {
    let type_tag = r.get_u8()?;
    if type_tag > 1 {
        return Err(StreamError::unsupported(format!("element type tag {type_tag}")));
    }
    Ok(type_tag)
}

fn get_dims(r: &mut ByteReader<'_>) -> Result<Dims> {
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(StreamError::corrupt(format!("invalid ndim {ndim}")));
    }
    let nz = r.get_uvarint()?;
    let ny = r.get_uvarint()?;
    let nx = r.get_uvarint()?;
    if nz == 0
        || ny == 0
        || nx == 0
        || nz.saturating_mul(ny).saturating_mul(nx) > stz_sz3::stream::MAX_POINTS
    {
        return Err(StreamError::corrupt(format!("invalid dims {nz}x{ny}x{nx}")));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(StreamError::corrupt("dims inconsistent with ndim"));
    }
    // Entry dims size every decode-side work buffer downstream; reject
    // hostile geometry here, before any of them can be reserved.
    stz_codec::check_decode_alloc(
        nz.saturating_mul(ny).saturating_mul(nx),
        8,
        "container entry field",
    )?;
    Ok(Dims::from_parts(ndim, nz as usize, ny as usize, nx as usize))
}

/// Parse the body of one native STZ entry record (everything after the
/// codec id), shared by the v1, v2, and v3 layouts.
fn parse_stz_entry(
    r: &mut ByteReader<'_>,
    payload_lo: u64,
    payload_end: u64,
) -> Result<(SectionLoc, StzDetail)> {
    let type_tag = get_type_tag(r)?;
    let dims = get_dims(r)?;
    let levels = r.get_u8()?;
    if !(2..=4).contains(&levels) {
        return Err(StreamError::corrupt(format!("invalid level count {levels}")));
    }
    let interp = match r.get_u8()? {
        0 => InterpKind::Linear,
        1 => InterpKind::Cubic,
        k => return Err(StreamError::unsupported(format!("interp kind {k}"))),
    };
    let adaptive = match r.get_u8()? {
        0 => false,
        1 => true,
        k => return Err(StreamError::corrupt(format!("invalid adaptive flag {k}"))),
    };
    let adaptive_ratio = r.get_f64()?;
    if !(adaptive_ratio >= 1.0 && adaptive_ratio.is_finite()) {
        return Err(StreamError::corrupt(format!("invalid adaptive ratio {adaptive_ratio}")));
    }
    let eb_finest = r.get_f64()?;
    if !(eb_finest > 0.0 && eb_finest.is_finite()) {
        return Err(StreamError::corrupt(format!("invalid error bound {eb_finest}")));
    }
    let radius = r.get_uvarint()?;
    if radius == 0 || radius > i64::MAX as u64 {
        return Err(StreamError::corrupt("invalid quantizer radius"));
    }

    let header = ArchiveHeader {
        dims,
        type_tag,
        levels,
        interp,
        adaptive,
        adaptive_ratio,
        eb_finest,
        radius: radius as i64,
    };

    let payload = get_section(r)?;
    check_bounds(&payload, payload_lo, payload_end, "payload")?;
    let payload_hi = payload.off + payload.len;
    let l1 = get_section(r)?;
    check_bounds(&l1, payload.off, payload_hi, "level-1")?;

    let plan = LevelPlan::new(header.dims, levels);
    let mut blocks = Vec::with_capacity(levels as usize - 1);
    for k in 2..=levels {
        let n = r.get_uvarint()?;
        if n > 8 {
            return Err(StreamError::corrupt(format!("level with {n} blocks")));
        }
        let expect = plan.levels[k as usize - 1].blocks.len();
        if n as usize != expect {
            return Err(StreamError::corrupt(format!(
                "level {k} has {n} blocks, geometry requires {expect}"
            )));
        }
        let mut level_blocks = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let b = get_section(r)?;
            check_bounds(&b, payload.off, payload_hi, "sub-block")?;
            level_blocks.push(b);
        }
        blocks.push(level_blocks);
    }
    Ok((payload, StzDetail { header, l1, blocks }))
}

/// Parse the body of one foreign-codec entry record (everything after the
/// codec id). The layout is codec-independent, so unknown codec ids still
/// index cleanly; only decoding them fails.
fn parse_foreign_entry(
    r: &mut ByteReader<'_>,
    payload_lo: u64,
    payload_end: u64,
) -> Result<(SectionLoc, ForeignDetail)> {
    let type_tag = get_type_tag(r)?;
    let dims = get_dims(r)?;
    let eb = r.get_f64()?;
    if !(eb > 0.0 && eb.is_finite()) {
        return Err(StreamError::corrupt(format!("invalid error bound {eb}")));
    }
    let payload = get_section(r)?;
    check_bounds(&payload, payload_lo, payload_end, "payload")?;
    Ok((payload, ForeignDetail { type_tag, dims, eb }))
}

/// Parse and validate a footer against the container's file length.
///
/// `version` is the container format version from the file header: v1
/// entries have no codec byte (all are STZ), v2 entries lead with one.
/// Validation mirrors `StzArchive::from_bytes`: every count, range and
/// parameter is cross-checked against the geometry implied by
/// `dims` + `levels`, so a forged index can never direct reads outside the
/// file or allocate disproportionately.
pub fn parse_footer(bytes: &[u8], file_len: u64, version: u8) -> Result<Vec<EntryRecord>> {
    parse_footer_bounded(bytes, HEADER_LEN, file_len.saturating_sub(TRAILER_LEN), version)
}

/// [`parse_footer`] with explicit payload bounds: every payload section
/// must lie inside `[payload_lo, payload_hi)`. The trailer-based layouts
/// (v1/v2) bound payloads by the footer's own start; the mutable layout
/// (v3) bounds them by the committed generation's footer offset, so
/// uncommitted staging bytes past the footer are unreachable by any
/// indexed read.
pub fn parse_footer_bounded(
    bytes: &[u8],
    payload_lo: u64,
    payload_hi: u64,
    version: u8,
) -> Result<Vec<EntryRecord>> {
    let payload_end = payload_hi;
    let mut r = ByteReader::new(bytes);
    let count = r.get_uvarint()?;
    if count > MAX_ENTRIES {
        return Err(StreamError::corrupt(format!("container claims {count} entries")));
    }
    let mut entries = Vec::with_capacity(count.min(1024) as usize);
    for _ in 0..count {
        let name_bytes = r.get_block()?;
        if name_bytes.len() as u64 > MAX_NAME_LEN {
            return Err(StreamError::corrupt("entry name too long"));
        }
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| StreamError::corrupt("entry name is not UTF-8"))?
            .to_string();

        let codec = if version >= 2 { r.get_u8()? } else { stz_backend::id::STZ };
        let (payload, detail) = if codec == stz_backend::id::STZ {
            let (payload, d) = parse_stz_entry(&mut r, payload_lo, payload_end)?;
            (payload, EntryDetail::Stz(d))
        } else {
            let (payload, d) = parse_foreign_entry(&mut r, payload_lo, payload_end)?;
            (payload, EntryDetail::Foreign(d))
        };
        entries.push(EntryRecord { name, codec, payload, detail });
    }
    if r.remaining() != 0 {
        return Err(StreamError::corrupt("trailing bytes after footer entries"));
    }
    Ok(entries)
}

/// Serialize the fixed 24-byte trailer.
pub fn encode_trailer(footer_off: u64, footer_len: u64, footer_crc: u32) -> [u8; 24] {
    let mut t = [0u8; 24];
    t[0..8].copy_from_slice(&footer_off.to_le_bytes());
    t[8..16].copy_from_slice(&footer_len.to_le_bytes());
    t[16..20].copy_from_slice(&footer_crc.to_le_bytes());
    t[20..24].copy_from_slice(&TRAILER_MAGIC);
    t
}

/// Parse the trailer; returns `(footer_off, footer_len, footer_crc)`.
pub fn parse_trailer(t: &[u8; 24], file_len: u64) -> Result<(u64, u64, u32)> {
    if t[20..24] != TRAILER_MAGIC {
        return Err(StreamError::corrupt("bad container trailer magic"));
    }
    let footer_off = u64::from_le_bytes(t[0..8].try_into().expect("8 bytes"));
    let footer_len = u64::from_le_bytes(t[8..16].try_into().expect("8 bytes"));
    let footer_crc = u32::from_le_bytes(t[16..20].try_into().expect("4 bytes"));
    let end = footer_off
        .checked_add(footer_len)
        .ok_or_else(|| StreamError::corrupt("footer range overflow"))?;
    let payload_end = file_len
        .checked_sub(TRAILER_LEN)
        .ok_or_else(|| StreamError::corrupt("file too short for a trailer"))?;
    if footer_off < HEADER_LEN || end != payload_end {
        return Err(StreamError::corrupt(format!(
            "footer range {footer_off}..{end} inconsistent with file length {file_len}"
        )));
    }
    Ok((footer_off, footer_len, footer_crc))
}
