//! Error type for container reading and writing.

use std::fmt;
use std::io;
use stz_codec::CodecError;

/// Failure while reading or writing an STZ container.
///
/// Like the codec layer, the reader is total over arbitrary input: malformed
/// containers, bad checksums, and I/O failures all surface as errors — never
/// panics or unbounded allocations.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying byte source failed.
    Io(io::Error),
    /// A payload section failed to decode (forwarded from `stz-codec`).
    Codec(CodecError),
    /// The container structure is invalid (bad magic, impossible index,
    /// checksum mismatch, out-of-bounds section, …).
    Corrupt(String),
    /// The container uses a feature this build does not support (unknown
    /// format version or element type).
    Unsupported(String),
}

impl StreamError {
    /// Build a [`StreamError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        StreamError::Corrupt(msg.into())
    }

    /// Build a [`StreamError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        StreamError::Unsupported(msg.into())
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "container I/O error: {e}"),
            StreamError::Codec(e) => write!(f, "container payload error: {e}"),
            StreamError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            StreamError::Unsupported(msg) => write!(f, "unsupported container: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<CodecError> for StreamError {
    fn from(e: CodecError) -> Self {
        StreamError::Codec(e)
    }
}

/// Map a container error into a codec error, for the [`stz_core::SectionSource`]
/// methods whose signatures use [`stz_codec::Result`].
pub(crate) fn to_codec(e: StreamError) -> CodecError {
    match e {
        StreamError::Codec(e) => e,
        StreamError::Io(e) => CodecError::corrupt(format!("I/O error: {e}")),
        StreamError::Corrupt(msg) => CodecError::Corrupt(msg),
        StreamError::Unsupported(msg) => CodecError::Unsupported(msg),
    }
}

/// Result alias for container operations.
pub type Result<T> = std::result::Result<T, StreamError>;
