//! Multigrid hierarchy geometry and multilinear nodal prediction.

use stz_field::{partition::offset_from_bits, Dims, SubLattice};

/// Number of hierarchy levels for a grid: coarsen by 2 until the largest
/// extent drops to ≤ 4 (deep hierarchies are MGARD's signature), capped at 8.
pub fn num_levels(dims: Dims) -> u8 {
    let max_ext = dims.as_array().into_iter().max().unwrap();
    let mut l = 1u8;
    let mut e = max_ext;
    while e > 4 && l < 8 {
        e = e.div_ceil(2);
        l += 1;
    }
    l
}

/// Working-grid extents at level `k` (1 = coarsest) of an `levels`-deep
/// hierarchy: the stride-`2^(levels-k)` coarsening.
pub fn grid_dims(dims: Dims, levels: u8, k: u8) -> Dims {
    debug_assert!(k >= 1 && k <= levels);
    dims.coarsened(1usize << (levels - k))
}

/// The odd-offset sub-lattices of a working grid — the points refined at
/// this level, in canonical offset order.
pub fn detail_lattices(grid: Dims) -> Vec<(SubLattice, Vec<usize>)> {
    let ndim = grid.ndim();
    let mut out = Vec::new();
    for bits in 1..(1usize << ndim) {
        let o = offset_from_bits(ndim, bits);
        if let Some(lat) = SubLattice::new(grid, o, 2) {
            let active: Vec<usize> = (0..3).filter(|&d| o[d] == 1).collect();
            out.push((lat, active));
        }
    }
    out
}

/// Multilinear prediction of grid point `p` from the even (coarse) lattice
/// of the same working grid; high corners clamp at the boundary.
#[inline]
pub fn predict_multilinear(buf: &[f64], grid: Dims, p: [usize; 3], active: &[usize]) -> f64 {
    let n = grid.as_array();
    let k = active.len();
    let mut sum = 0.0;
    for bits in 0..(1usize << k) {
        let mut c = p;
        for (j, &d) in active.iter().enumerate() {
            c[d] = if bits >> j & 1 == 1 && p[d] + 1 < n[d] { p[d] + 1 } else { p[d] - 1 };
        }
        sum += buf[grid.index(c[0], c[1], c[2])];
    }
    sum / (1usize << k) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_depth() {
        assert_eq!(num_levels(Dims::d3(4, 4, 4)), 1);
        assert_eq!(num_levels(Dims::d3(8, 8, 8)), 2);
        assert_eq!(num_levels(Dims::d3(64, 64, 64)), 5);
        assert_eq!(num_levels(Dims::d3(512, 512, 512)), 8);
        assert_eq!(num_levels(Dims::d1(1000)), 8);
    }

    #[test]
    fn grid_dims_chain() {
        let dims = Dims::d3(33, 17, 9);
        let l = num_levels(dims);
        assert_eq!(grid_dims(dims, l, l), dims);
        let coarsest = grid_dims(dims, l, 1);
        assert!(coarsest.as_array().iter().all(|&n| n <= 5));
    }

    #[test]
    fn detail_lattices_tile_refinement() {
        let grid = Dims::d3(9, 8, 7);
        let lats = detail_lattices(grid);
        let even = SubLattice::new(grid, [0, 0, 0], 2).unwrap();
        let total: usize = lats.iter().map(|(l, _)| l.len()).sum();
        assert_eq!(total + even.len(), grid.len());
    }

    #[test]
    fn multilinear_exact_on_linear_field() {
        let grid = Dims::d3(9, 9, 9);
        let mut buf = vec![0.0; grid.len()];
        for z in 0..9 {
            for y in 0..9 {
                for x in 0..9 {
                    buf[grid.index(z, y, x)] = z as f64 + 2.0 * y as f64 + 3.0 * x as f64;
                }
            }
        }
        for (lat, active) in detail_lattices(grid) {
            lat.for_each_point(|_, z, y, x| {
                let p = predict_multilinear(&buf, grid, [z, y, x], &active);
                let want = z as f64 + 2.0 * y as f64 + 3.0 * x as f64;
                // Interior points are exact; boundary clamp can deviate.
                if z + 1 < 9 && y + 1 < 9 && x + 1 < 9 {
                    assert!((p - want).abs() < 1e-12, "({z},{y},{x}): {p} vs {want}");
                }
            });
        }
    }
}
