//! MGARD-style compression driver: deep hierarchy, multilinear prediction,
//! one Huffman stream.

use crate::hierarchy::{detail_lattices, grid_dims, num_levels, predict_multilinear};
use stz_codec::{
    check_decode_alloc, huffman, ByteReader, ByteWriter, CodecError, LinearQuantizer, Result,
    ESCAPE_SYMBOL,
};
use stz_field::{Dims, Field, Scalar, SubLattice};

/// Magic bytes of an MGARD-style archive.
pub const MAGIC: [u8; 4] = *b"MGR1";
/// Format version.
pub const VERSION: u8 = 1;

/// Configuration: absolute error bound.
#[derive(Debug, Clone, Copy)]
pub struct MgardConfig {
    pub eb: f64,
    /// Quantizer radius.
    pub radius: i64,
}

impl MgardConfig {
    pub fn new(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite());
        MgardConfig { eb, radius: 1 << 15 }
    }
}

/// Compress a field.
pub fn compress<T: Scalar>(field: &Field<T>, config: &MgardConfig) -> Vec<u8> {
    let dims = field.dims();
    let levels = num_levels(dims);
    let quant = LinearQuantizer::new(config.eb, config.radius);

    let mut symbols: Vec<u32> = Vec::with_capacity(dims.len());
    let mut outliers: Vec<T> = Vec::new();

    // Coarsest level: Lorenzo-style previous-point prediction along the
    // traversal, against reconstructed values.
    let coarsest = grid_dims(dims, levels, 1);
    let l1_orig: Field<T> = SubLattice::new(dims, [0, 0, 0], 1usize << (levels - 1))
        .expect("origin lattice")
        .gather(field);
    let mut grid = Field::<f64>::zeros(coarsest);
    {
        let src = l1_orig.as_slice();
        let dst = grid.as_mut_slice();
        let mut prev = 0.0f64;
        for (i, &v) in src.iter().enumerate() {
            let actual = v.to_f64();
            match quantize_scalar::<T>(&quant, actual, prev) {
                Some((symbol, recon)) => {
                    symbols.push(symbol);
                    dst[i] = recon;
                }
                None => {
                    symbols.push(ESCAPE_SYMBOL);
                    outliers.push(src[i]);
                    dst[i] = actual;
                }
            }
            prev = dst[i];
        }
    }

    // Finer levels: multilinear prediction from the reconstructed coarser
    // grid, refined level by level.
    for k in 2..=levels {
        let gd = grid_dims(dims, levels, k);
        let mut next = Field::<f64>::zeros(gd);
        SubLattice::new(gd, [0, 0, 0], 2).expect("origin lattice").scatter(&grid, &mut next);
        let stride = 1usize << (levels - k);
        for (lat, active) in detail_lattices(gd) {
            let [oz, oy, ox] = lat.offset();
            let ld = lat.dims();
            for z in 0..ld.nz() {
                for y in 0..ld.ny() {
                    for x in 0..ld.nx() {
                        let (gz, gy, gx) = (oz + 2 * z, oy + 2 * y, ox + 2 * x);
                        let pred = predict_multilinear(next.as_slice(), gd, [gz, gy, gx], &active);
                        let actual = field.get(gz * stride, gy * stride, gx * stride).to_f64();
                        let gidx = gd.index(gz, gy, gx);
                        match quantize_scalar::<T>(&quant, actual, pred) {
                            Some((symbol, recon)) => {
                                symbols.push(symbol);
                                next.as_mut_slice()[gidx] = recon;
                            }
                            None => {
                                symbols.push(ESCAPE_SYMBOL);
                                outliers.push(field.get(gz * stride, gy * stride, gx * stride));
                                next.as_mut_slice()[gidx] = actual;
                            }
                        }
                    }
                }
            }
        }
        grid = next;
    }

    let mut w = ByteWriter::with_capacity(symbols.len() / 2 + 64);
    w.put_raw(&MAGIC);
    w.put_u8(VERSION);
    w.put_u8(T::TYPE_TAG);
    w.put_u8(dims.ndim());
    let [nz, ny, nx] = dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_f64(config.eb);
    w.put_uvarint(config.radius as u64);
    w.put_u8(levels);
    w.put_block(&huffman::encode_block(&symbols));
    w.put_uvarint(outliers.len() as u64);
    let mut raw = Vec::with_capacity(outliers.len() * T::BYTES);
    for &v in &outliers {
        v.write_exact(&mut raw);
    }
    w.put_raw(&raw);
    w.finish()
}

#[inline]
fn quantize_scalar<T: Scalar>(
    quant: &LinearQuantizer,
    actual: f64,
    pred: f64,
) -> Option<(u32, f64)> {
    match quant.quantize(actual, pred) {
        stz_codec::QuantOutcome::Code { symbol, reconstructed } => {
            let rounded = T::from_f64(reconstructed).to_f64();
            if (rounded - actual).abs() > quant.error_bound() {
                None
            } else {
                Some((symbol, rounded))
            }
        }
        stz_codec::QuantOutcome::Escape => None,
    }
}

/// Decompress the full field.
pub fn decompress<T: Scalar>(bytes: &[u8]) -> Result<Field<T>> {
    decompress_impl::<T>(bytes, u8::MAX)
}

/// Resolution-progressive decompression: reconstruct only levels `1..=k`
/// (the stride-`2^(levels-k)` preview). `k` is clamped to the hierarchy
/// depth.
pub fn decompress_level<T: Scalar>(bytes: &[u8], k: u8) -> Result<Field<T>> {
    if k == 0 {
        return Err(CodecError::corrupt("level must be >= 1"));
    }
    decompress_impl::<T>(bytes, k)
}

fn decompress_impl<T: Scalar>(bytes: &[u8], upto: u8) -> Result<Field<T>> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)? != MAGIC {
        return Err(CodecError::corrupt("bad MGARD magic"));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(CodecError::unsupported(format!("MGARD format version {version}")));
    }
    if r.get_u8()? != T::TYPE_TAG {
        return Err(CodecError::corrupt("MGARD element type mismatch"));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt("invalid ndim"));
    }
    let nz = r.get_uvarint()? as usize;
    let ny = r.get_uvarint()? as usize;
    let nx = r.get_uvarint()? as usize;
    if nz == 0 || ny == 0 || nx == 0 || nz.saturating_mul(ny).saturating_mul(nx) > (1 << 40) {
        return Err(CodecError::corrupt("invalid dims"));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    let dims = Dims::from_parts(ndim, nz, ny, nx);
    // Reject before the hierarchy's dims-sized grids are allocated.
    check_decode_alloc(dims.len() as u64, 8, "mgard field")?;
    let eb = r.get_f64()?;
    if !(eb > 0.0 && eb.is_finite()) {
        return Err(CodecError::corrupt("invalid error bound"));
    }
    let radius = r.get_uvarint()?;
    if radius == 0 || radius > i64::MAX as u64 {
        return Err(CodecError::corrupt("invalid radius"));
    }
    let levels = r.get_u8()?;
    if levels == 0 || levels != num_levels(dims) {
        return Err(CodecError::corrupt("level count mismatch"));
    }
    let upto = upto.min(levels);
    let quant = LinearQuantizer::new(eb, radius as i64);

    let symbols = huffman::decode_block(r.get_block()?)?;
    if symbols.len() != dims.len() {
        return Err(CodecError::corrupt("symbol count mismatch"));
    }
    let n_out = r.get_uvarint()? as usize;
    let escapes = symbols.iter().filter(|&&s| s == ESCAPE_SYMBOL).count();
    if n_out != escapes {
        return Err(CodecError::corrupt("outlier count mismatch"));
    }
    let raw = r.get_raw(n_out * T::BYTES)?;
    let outliers: Vec<T> = raw.chunks_exact(T::BYTES).map(T::read_exact).collect();

    let mut sym_pos = 0usize;
    let mut out_pos = 0usize;

    // Coarsest level.
    let coarsest = grid_dims(dims, levels, 1);
    let mut grid = Field::<f64>::zeros(coarsest);
    {
        let dst = grid.as_mut_slice();
        let mut prev = 0.0f64;
        for v in dst.iter_mut() {
            let s = symbols[sym_pos];
            sym_pos += 1;
            *v = if s == ESCAPE_SYMBOL {
                let o = outliers[out_pos].to_f64();
                out_pos += 1;
                o
            } else {
                T::from_f64(quant.reconstruct(s, prev)).to_f64()
            };
            prev = *v;
        }
    }

    for k in 2..=upto {
        let gd = grid_dims(dims, levels, k);
        let mut next = Field::<f64>::zeros(gd);
        SubLattice::new(gd, [0, 0, 0], 2).expect("origin lattice").scatter(&grid, &mut next);
        for (lat, active) in detail_lattices(gd) {
            let [oz, oy, ox] = lat.offset();
            let ld = lat.dims();
            for z in 0..ld.nz() {
                for y in 0..ld.ny() {
                    for x in 0..ld.nx() {
                        let (gz, gy, gx) = (oz + 2 * z, oy + 2 * y, ox + 2 * x);
                        let gidx = gd.index(gz, gy, gx);
                        let s = symbols[sym_pos];
                        sym_pos += 1;
                        next.as_mut_slice()[gidx] = if s == ESCAPE_SYMBOL {
                            let o = outliers[out_pos].to_f64();
                            out_pos += 1;
                            o
                        } else {
                            let pred =
                                predict_multilinear(next.as_slice(), gd, [gz, gy, gx], &active);
                            T::from_f64(quant.reconstruct(s, pred)).to_f64()
                        };
                    }
                }
            }
        }
        grid = next;
    }

    Ok(Field::from_vec(grid.dims(), grid.as_slice().iter().map(|&v| T::from_f64(v)).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: Dims) -> Field<f32> {
        Field::from_fn(dims, |z, y, x| {
            ((z as f32) * 0.2).sin() * 2.0 + ((y as f32) * 0.17).cos() + ((x as f32) * 0.23).sin()
        })
    }

    fn max_err(a: &Field<f32>, b: &Field<f32>) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| ((x as f64) - (y as f64)).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_error_bounded() {
        let f = smooth(Dims::d3(20, 24, 28));
        for eb in [1e-1, 1e-2, 1e-3] {
            let bytes = compress(&f, &MgardConfig::new(eb));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert_eq!(back.dims(), f.dims());
            assert!(max_err(&f, &back) <= eb, "eb {eb}");
        }
    }

    #[test]
    fn roundtrip_odd_dims_f64_lower_rank() {
        let f = Field::from_fn(Dims::d3(13, 9, 11), |z, y, x| {
            ((z + y * 2 + x * 3) as f64 * 0.05).sin() * 100.0
        });
        let bytes = compress(&f, &MgardConfig::new(0.01));
        let back: Field<f64> = decompress(&bytes).unwrap();
        let err = f
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err <= 0.01);
        for dims in [Dims::d2(17, 23), Dims::d1(100)] {
            let f = smooth(dims);
            let bytes = compress(&f, &MgardConfig::new(1e-2));
            let back: Field<f32> = decompress(&bytes).unwrap();
            assert!(max_err(&f, &back) <= 1e-2, "dims {dims}");
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let f = smooth(Dims::d3(32, 32, 32));
        let bytes = compress(&f, &MgardConfig::new(1e-3));
        let cr = f.nbytes() as f64 / bytes.len() as f64;
        assert!(cr > 4.0, "CR {cr}");
    }

    #[test]
    fn progressive_levels_shrink() {
        let f = smooth(Dims::d3(33, 33, 33));
        let bytes = compress(&f, &MgardConfig::new(1e-3));
        let full: Field<f32> = decompress(&bytes).unwrap();
        let levels = num_levels(f.dims());
        let mut prev_len = 0usize;
        for k in 1..=levels {
            let p: Field<f32> = decompress_level(&bytes, k).unwrap();
            assert_eq!(p.dims(), f.dims().coarsened(1usize << (levels - k)));
            assert!(p.len() > prev_len);
            prev_len = p.len();
            // Preview equals the matching downsample of the full recon.
            assert_eq!(p, full.downsample(1usize << (levels - k)), "level {k}");
        }
    }

    #[test]
    fn outliers_roundtrip() {
        let mut f = smooth(Dims::d3(12, 12, 12));
        f.set(3, 3, 3, 1e30);
        f.set(11, 0, 7, f32::NAN);
        let bytes = compress(&f, &MgardConfig::new(1e-3));
        let back: Field<f32> = decompress(&bytes).unwrap();
        assert_eq!(back.get(3, 3, 3), 1e30);
        assert!(back.get(11, 0, 7).is_nan());
    }

    #[test]
    fn truncation_never_panics() {
        let f = smooth(Dims::d3(10, 10, 10));
        let bytes = compress(&f, &MgardConfig::new(1e-3));
        for cut in (0..bytes.len()).step_by(7) {
            let _ = decompress::<f32>(&bytes[..cut]);
        }
    }

    #[test]
    fn wrong_type_rejected() {
        let f = smooth(Dims::d3(8, 8, 8));
        let bytes = compress(&f, &MgardConfig::new(1e-3));
        assert!(decompress::<f64>(&bytes).is_err());
    }

    #[test]
    fn linear_prediction_worse_than_nothing_is_false() {
        // Sanity: MGARD-like must beat raw storage comfortably but, by
        // design, its linear prediction trails cubic predictors; we only
        // assert the former here (the cross-compressor comparison lives in
        // the benchmark harness).
        let f = smooth(Dims::d3(24, 24, 24));
        let bytes = compress(&f, &MgardConfig::new(1e-3));
        assert!(bytes.len() < f.nbytes() / 3);
    }
}
