//! MGARD-style multigrid lossy compressor (baseline).
//!
//! Reimplements the structure of MGARD(-X) (Ainsworth et al.; Gong et al.,
//! SoftwareX 2023), the paper's resolution-progressive baseline: a deep
//! multigrid hierarchy in which each level's nodal values are predicted by
//! **multilinear interpolation** from the next coarser grid and only the
//! multilevel coefficients (residuals) are quantized and entropy-coded.
//!
//! Substitutions relative to the reference MGARD (documented in DESIGN.md):
//! the L2 projection ("correction" solve) is omitted — we use the
//! interpolation-wavelet decomposition, and quantize against reconstructed
//! coarse values so the absolute error bound holds point-wise by
//! construction. What is preserved is exactly what the paper's evaluation
//! depends on: resolution-progressive decoding, a deep hierarchy with
//! full-grid passes, linear-order prediction (hence rate-distortion below
//! the cubic predictors of SZ3/STZ, as in paper Fig. 11), and a monolithic
//! code stream (no random access, paper Table 1).

pub mod compressor;
pub mod hierarchy;

pub use compressor::{compress, decompress, decompress_level, MgardConfig};
