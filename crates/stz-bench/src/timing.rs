//! Wall-clock measurement helpers for the harness binaries.

use std::time::Instant;

/// Time one invocation of `f`, returning `(seconds, result)`.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64(), r)
}

/// Run `f` up to `reps` times (at least once) and return the best (minimum)
/// wall-clock seconds together with the last result — the usual
/// noise-robust estimator for short benchmark sections.
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let reps = reps.max(1);
    let (mut best, mut out) = time_once(&mut f);
    for _ in 1..reps {
        let (t, r) = time_once(&mut f);
        if t < best {
            best = t;
        }
        out = r;
    }
    (best, out)
}

/// Throughput in MB/s for `bytes` processed in `seconds`.
pub fn throughput_mbs(bytes: usize, seconds: f64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / seconds.max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures() {
        let (t, v) = time_once(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(t >= 0.0);
        assert!(v > 0);
    }

    #[test]
    fn time_best_not_worse_than_single() {
        let mut count = 0;
        let (t, _) = time_best(3, || {
            count += 1;
        });
        assert_eq!(count, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn throughput_math() {
        let t = throughput_mbs(2 * 1024 * 1024, 1.0);
        assert!((t - 2.0).abs() < 1e-12);
    }
}
