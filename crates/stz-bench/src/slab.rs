//! Slab-decomposition parallel wrappers for the baseline compressors.
//!
//! The reference SZ3/SPERR parallelize with OpenMP by splitting the domain
//! into per-thread chunks compressed independently. That is what this
//! module reproduces: the field is cut into z-slabs, each slab is
//! compressed by the serial codec, and the slab archives are concatenated
//! under a small container. Cutting the domain loses cross-slab
//! correlation, which is exactly the compression-ratio drop the paper
//! reports for SZ3's OMP mode (Table 3's asterisks).

use rayon::prelude::*;
use stz_codec::{ByteReader, ByteWriter, CodecError, Result};
use stz_field::{Dims, Field, Region, Scalar};

/// Magic bytes of the slab container.
pub const MAGIC: [u8; 4] = *b"SLB1";

/// Split `field` into up to `nslabs` z-slabs, compress each with `f` in
/// parallel, and concatenate under the slab container.
pub fn compress_slabs<T: Scalar>(
    field: &Field<T>,
    nslabs: usize,
    f: impl Fn(&Field<T>) -> Vec<u8> + Sync,
) -> Vec<u8> {
    let dims = field.dims();
    let regions = slab_regions(dims, nslabs);
    let blocks: Vec<Vec<u8>> = regions.par_iter().map(|r| f(&field.extract_region(r))).collect();

    let mut w = ByteWriter::new();
    w.put_raw(&MAGIC);
    w.put_u8(dims.ndim());
    let [nz, ny, nx] = dims.as_array();
    w.put_uvarint(nz as u64);
    w.put_uvarint(ny as u64);
    w.put_uvarint(nx as u64);
    w.put_uvarint(regions.len() as u64);
    for (r, b) in regions.iter().zip(&blocks) {
        w.put_uvarint(r.z0 as u64);
        w.put_uvarint(r.z1 as u64);
        w.put_block(b);
    }
    w.finish()
}

/// Decode a slab container, decompressing slabs with `f` (in parallel when
/// `parallel` is set) and reassembling the full field.
pub fn decompress_slabs<T: Scalar>(
    bytes: &[u8],
    parallel: bool,
    f: impl Fn(&[u8]) -> Result<Field<T>> + Sync,
) -> Result<Field<T>> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(4)? != MAGIC {
        return Err(CodecError::corrupt("not a slab container"));
    }
    let ndim = r.get_u8()?;
    if !(1..=3).contains(&ndim) {
        return Err(CodecError::corrupt("invalid ndim"));
    }
    let nz = r.get_uvarint()? as usize;
    let ny = r.get_uvarint()? as usize;
    let nx = r.get_uvarint()? as usize;
    if nz == 0 || ny == 0 || nx == 0 || nz.saturating_mul(ny).saturating_mul(nx) > (1 << 40) {
        return Err(CodecError::corrupt("invalid dims"));
    }
    if (ndim < 3 && nz != 1) || (ndim < 2 && ny != 1) {
        return Err(CodecError::corrupt("dims inconsistent with ndim"));
    }
    let dims = Dims::from_parts(ndim, nz, ny, nx);
    let n = r.get_uvarint()? as usize;
    if n == 0 || n > nz {
        return Err(CodecError::corrupt("invalid slab count"));
    }
    let mut slabs = Vec::with_capacity(n);
    for _ in 0..n {
        let z0 = r.get_uvarint()? as usize;
        let z1 = r.get_uvarint()? as usize;
        if z0 >= z1 || z1 > nz {
            return Err(CodecError::corrupt("invalid slab extent"));
        }
        slabs.push((z0, z1, r.get_block()?));
    }

    let decoded: Vec<Result<Field<T>>> = if parallel {
        slabs.par_iter().map(|&(_, _, b)| f(b)).collect()
    } else {
        slabs.iter().map(|&(_, _, b)| f(b)).collect()
    };

    let mut out = Field::zeros(dims);
    for ((z0, z1, _), dec) in slabs.iter().zip(decoded) {
        let dec = dec?;
        if dec.dims().as_array() != [z1 - z0, ny, nx] {
            return Err(CodecError::corrupt("slab dims mismatch"));
        }
        let plane = ny * nx;
        let dst = out.as_mut_slice();
        dst[z0 * plane..(z0 + dec.dims().nz()) * plane].copy_from_slice(dec.as_slice());
    }
    Ok(out)
}

/// Cut the z extent into at most `nslabs` contiguous regions, with slab
/// boundaries aligned to multiples of 4 where possible (so ZFP's 4³ blocks
/// are not split across slabs and slab-parallel ZFP matches serial block
/// geometry, as the reference OMP ZFP does).
pub fn slab_regions(dims: Dims, nslabs: usize) -> Vec<Region> {
    let nz = dims.nz();
    let n = nslabs.clamp(1, nz);
    let mut out = Vec::with_capacity(n);
    let mut z0 = 0;
    for i in 0..n {
        let mut z1 = nz * (i + 1) / n;
        // Round up to the next multiple of 4 (except the final slab).
        if i + 1 < n {
            z1 = (z1.div_ceil(4) * 4).min(nz);
        } else {
            z1 = nz;
        }
        if z1 > z0 {
            out.push(Region::d3(z0..z1, 0..dims.ny(), 0..dims.nx()));
            z0 = z1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Field<f32> {
        stz_data::synth::magrec_like(Dims::d3(20, 24, 24), 1)
    }

    #[test]
    fn slab_regions_partition_z() {
        let dims = Dims::d3(20, 4, 4);
        let rs = slab_regions(dims, 8);
        assert!(!rs.is_empty() && rs.len() <= 8);
        let total: usize = rs.iter().map(|r| r.z1 - r.z0).sum();
        assert_eq!(total, 20);
        assert_eq!(rs[0].z0, 0);
        assert_eq!(rs.last().unwrap().z1, 20);
        // Contiguous, non-overlapping.
        for w in rs.windows(2) {
            assert_eq!(w[0].z1, w[1].z0);
        }
    }

    #[test]
    fn slab_boundaries_block_aligned() {
        let rs = slab_regions(Dims::d3(64, 4, 4), 8);
        for r in &rs[..rs.len() - 1] {
            assert_eq!(r.z1 % 4, 0, "boundary {} not 4-aligned", r.z1);
        }
    }

    #[test]
    fn more_slabs_than_planes_clamps() {
        let rs = slab_regions(Dims::d3(3, 4, 4), 8);
        assert!(!rs.is_empty() && rs.len() <= 3);
        let total: usize = rs.iter().map(|r| r.z1 - r.z0).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn roundtrip_with_sz3() {
        let f = field();
        let eb = 1e-3;
        let bytes =
            compress_slabs(&f, 4, |s| stz_sz3::compress(s, &stz_sz3::Sz3Config::absolute(eb)));
        let back: Field<f32> = decompress_slabs(&bytes, true, stz_sz3::decompress).unwrap();
        assert_eq!(back.dims(), f.dims());
        let err = stz_data::metrics::max_abs_error(&f, &back);
        assert!(err <= eb);
    }

    #[test]
    fn slab_mode_costs_compression_ratio() {
        // The paper's Table 3 asterisk: chunked SZ3 compresses worse.
        let f = stz_data::synth::miranda_like(Dims::d3(32, 32, 32), 5);
        let eb = 1e-3;
        let whole = stz_sz3::compress(&f, &stz_sz3::Sz3Config::absolute(eb));
        let slabbed =
            compress_slabs(&f, 8, |s| stz_sz3::compress(s, &stz_sz3::Sz3Config::absolute(eb)));
        assert!(slabbed.len() > whole.len(), "slabbed {} vs whole {}", slabbed.len(), whole.len());
    }

    #[test]
    fn garbage_rejected() {
        assert!(decompress_slabs::<f32>(b"garbage", false, stz_sz3::decompress).is_err());
    }
}
