//! Minimal JSON reading and writing for benchmark artefacts.
//!
//! The harness emits machine-readable results (`BENCH_*.json`) and the CI
//! regression gate reads a committed baseline back. The build environment
//! has no registry access, so instead of `serde` this module implements
//! the small subset the artefacts need: objects, arrays, strings (with
//! the standard escapes), finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), which also makes emission
    /// deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (must be exactly
    /// representable — counters and byte totals, not measurements).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v < 9.0e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// Walk a path of object members (`get_path(&["cache", "hits"])`).
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |node, key| node.get(key))
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

/// Convenience constructor for object literals. Values coerce via
/// [`Json`]'s `From` impls, so nested documents compose without
/// `Json::Num(...)` noise:
///
/// ```
/// use stz_bench::json::{arr, obj, Json};
/// let doc = obj([
///     ("rps", 1250.5.into()),
///     ("latency", obj([("p50_ms", 0.8.into()), ("p99_ms", 4.2.into())])),
///     ("histogram", arr([arr([1.0.into(), 17.into()]), arr([2.0.into(), 3.into()])])),
/// ]);
/// assert_eq!(doc.get("latency").unwrap().get("p99_ms").unwrap().as_f64(), Some(4.2));
/// ```
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience constructor for array literals (see [`obj`]).
pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
    Json::Arr(items.into_iter().collect())
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i32> for Json {
    fn from(v: i32) -> Json {
        Json::Num(f64::from(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<V: Into<Json>> From<Vec<V>> for Json {
    fn from(v: Vec<V>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                m.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF-8 number")?;
    let v: f64 = s.parse().map_err(|_| format!("invalid number {s:?} at offset {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number {s:?}"));
    }
    Ok(Json::Num(v))
}

/// Parse the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("truncated \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: a low surrogate escape must
                            // follow; combine the pair into one code point.
                            if b.get(*pos + 1..*pos + 3) != Some(&b"\\u"[..]) {
                                return Err("lone high surrogate in \\u escape".into());
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate in \\u escape".into());
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&code) {
                            return Err("lone low surrogate in \\u escape".into());
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid \\u code point")?);
                    }
                    _ => return Err(format!("invalid escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe: operate on
                // the str slice).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "non-UTF-8 string")?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn emit_num(v: f64, out: &mut String) {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{v:?}"));
    }
}

fn emit_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Json::Num(v) => emit_num(*v, out),
        Json::Str(s) => emit_str(s, out),
        Json::Arr(v) if v.is_empty() => out.push_str("[]"),
        Json::Arr(v) => {
            out.push_str("[\n");
            for (i, item) in v.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                emit(item, indent + 1, out);
                out.push_str(if i + 1 < v.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(m) if m.is_empty() => out.push_str("{}"),
        Json::Obj(m) => {
            out.push_str("{\n");
            for (i, (k, item)) in m.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                emit_str(k, out);
                out.push_str(": ");
                emit(item, indent + 1, out);
                out.push_str(if i + 1 < m.len() { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    /// Pretty-print with two-space indentation and sorted object keys
    /// (deterministic output, diff-friendly baselines).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        emit(self, 0, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = obj([
            ("schema", Json::Str("x/v1".into())),
            ("scale", Json::Num(16.0)),
            ("ratio", Json::Num(12.25)),
            ("tiny", Json::Num(1e-3)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("rows", Json::Arr(vec![obj([("name", Json::Str("a\"b".into()))]), Json::Num(-2.5)])),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("scale").unwrap().as_f64(), Some(16.0));
        assert_eq!(back.get("rows").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parses_external_style() {
        let j = Json::parse(r#"{ "a": [1, 2.5, -3e-2], "b": {"c": "dA"} }"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-0.03));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("dA"));
    }

    #[test]
    fn unicode_escapes_decode() {
        // BMP escape, raw multi-byte UTF-8, and a surrogate pair combining
        // into one non-BMP code point.
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap().as_str(), Some("é"));
        assert_eq!(Json::parse(r#""é raw""#).unwrap().as_str(), Some("é raw"));
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        // Lone or malformed surrogates are errors, not silent corruption.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dx""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::Num(16.0).to_string(), "16");
        assert_eq!(Json::Num(0.001).to_string(), "0.001");
    }

    #[test]
    fn nested_histogram_document_roundtrips() {
        // The shape BENCH_serve.json needs: objects holding objects
        // holding arrays of [bound, count] pairs, several levels deep.
        let kind = |p50: f64, p99: f64, hist: Vec<(f64, u64)>| {
            obj([
                ("p50_ms", p50.into()),
                ("p99_ms", p99.into()),
                ("histogram", arr(hist.into_iter().map(|(b, c)| arr([b.into(), c.into()])))),
            ])
        };
        let doc = obj([
            ("schema", "stz-bench/serve/v1".into()),
            ("rps", 1234.5.into()),
            (
                "cache",
                obj([("hits", 60u64.into()), ("misses", 40u64.into()), ("hit_rate", 0.6.into())]),
            ),
            (
                "kinds",
                obj([
                    ("full", kind(1.5, 9.0, vec![(1.0, 3), (2.0, 17)])),
                    ("roi", kind(0.5, 2.0, vec![(0.5, 20)])),
                ]),
            ),
        ]);
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get_path(&["cache", "hits"]).unwrap().as_u64(), Some(60));
        assert_eq!(back.get_path(&["kinds", "full", "p99_ms"]).unwrap().as_f64(), Some(9.0));
        let hist = back.get_path(&["kinds", "full", "histogram"]).unwrap().as_arr().unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].as_arr().unwrap()[1].as_u64(), Some(17));
        assert_eq!(back.get_path(&["kinds", "nope"]), None);
    }

    #[test]
    fn coercions_and_accessors() {
        assert_eq!(Json::from(true).as_bool(), Some(true));
        assert_eq!(Json::from(3usize).as_u64(), Some(3));
        assert_eq!(Json::from("x").as_str(), Some("x"));
        assert_eq!(Json::from(vec![1u64, 2, 3]).as_arr().unwrap().len(), 3);
        // as_u64 refuses to round.
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(2.0).as_u64(), Some(2));
    }
}
