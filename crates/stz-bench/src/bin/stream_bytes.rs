//! Bytes-read-vs-query measurement for the disk-backed stz-stream container.
//!
//! The out-of-core claim behind the paper's streaming features is that a
//! progressive preview or ROI fetch should *touch* only a fraction of the
//! archive bytes, not merely decode a fraction. This harness packs a
//! synthetic field into a container file, then serves progressive previews
//! and ROI queries through a byte-counting [`stz_stream::CountingSource`],
//! reporting exactly how many bytes each query pulled off disk — and
//! verifying every disk-backed result is bit-identical to the in-memory
//! decompression path.
//!
//! ```text
//! cargo run --release -p stz-bench --bin stream_bytes [-- --scale 8 --seed 2025]
//! ```

use std::time::Instant;
use stz_bench::cli;
use stz_core::{StzCompressor, StzConfig};
use stz_field::{Dims, Region};
use stz_stream::{pack_to_file, ContainerReader, CountingSource, FileSource};

fn main() {
    let opts = cli::parse(std::env::args());
    let n = (256 / opts.scale).max(16);
    let dims = Dims::d3(n, n, n);
    let field = stz_data::synth::miranda_like(dims, opts.seed);
    let (lo, hi) = field.value_range();
    let eb = 1e-3 * (hi - lo);
    let archive =
        StzCompressor::new(StzConfig::three_level(eb)).compress(&field).expect("compression");
    let payload = archive.compressed_len();

    let path =
        std::env::temp_dir().join(format!("stz_stream_bytes_{}_{n}.stzc", std::process::id()));
    pack_to_file(&path, &[("field", &archive)]).expect("pack container");
    let file_len = std::fs::metadata(&path).expect("stat container").len();

    let source = CountingSource::new(FileSource::open(&path).expect("open container"));
    let reader = ContainerReader::open(source).expect("parse container");
    let open_bytes = reader.source().bytes_read();
    let entry = reader.entry::<f32>(0).expect("typed entry");

    println!("# stream_bytes: {dims} f32, eb {eb:.3e}");
    println!(
        "# container {} bytes ({} payload + index), open cost {} bytes in {} reads",
        file_len,
        payload,
        open_bytes,
        reader.source().read_calls()
    );
    println!(
        "{:<22} {:>12} {:>10} {:>8} {:>10}",
        "query", "bytes_read", "of_payload", "reads", "ms"
    );

    let report = |name: &str, bytes: u64, reads: u64, secs: f64| {
        println!(
            "{name:<22} {bytes:>12} {:>9.1}% {reads:>8} {:>10.2}",
            100.0 * bytes as f64 / payload as f64,
            secs * 1e3
        );
    };

    // Progressive previews: level k should cost ~bytes_through_level(k).
    for k in 1..=archive.num_levels() {
        reader.source().reset();
        let t = Instant::now();
        let preview = entry.decompress_level(k).expect("disk preview");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            preview,
            archive.decompress_level(k).expect("memory preview"),
            "disk preview must be bit-identical to in-memory"
        );
        report(
            &format!("preview level {k}"),
            reader.source().bytes_read(),
            reader.source().read_calls(),
            secs,
        );
    }

    // ROI queries of increasing size, plus a 2-D slice.
    let quarter = n / 4;
    let rois = [
        ("roi 8x8x8 corner", Region::d3(0..8.min(n), 0..8.min(n), 0..8.min(n))),
        (
            "roi center box",
            Region::d3(quarter..n - quarter, quarter..n - quarter, quarter..n - quarter),
        ),
        ("roi z-slice", Region::slice_z(dims, n / 2)),
        ("roi full volume", Region::full(dims)),
    ];
    for (name, region) in rois {
        reader.source().reset();
        let t = Instant::now();
        let roi = entry.decompress_region(&region).expect("disk ROI");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(
            roi,
            archive.decompress_region(&region).expect("memory ROI"),
            "disk ROI must be bit-identical to in-memory"
        );
        report(name, reader.source().bytes_read(), reader.source().read_calls(), secs);
    }

    let _ = std::fs::remove_file(&path);
}
