//! Thread-scaling harness for the multi-threaded compression runtime.
//!
//! Runs STZ compression, full decompression, and pipelined container
//! packing on the bench field at 1/2/4/8 worker threads (capped at
//! `--threads`), reporting wall-clock time and speedup over the 1-thread
//! run — and **verifying that every width produces byte-identical
//! output**, the pool's core guarantee (ordered collect, length-only chunk
//! layout; see `crates/shims/rayon`).
//!
//! ```text
//! cargo run --release -p stz-bench --bin thread_scaling [-- --scale 8 --reps 3 --threads 8]
//! ```
//!
//! With `--check`, the harness exits non-zero unless 4-thread compression
//! reaches >1.5x speedup — skipped (with a notice) when the machine
//! exposes fewer than 4 cores, where the speedup is physically
//! unattainable; byte-identity is always enforced.

use stz_bench::{cli, timing};
use stz_core::{StzCompressor, StzConfig};
use stz_field::{Dims, Field};
use stz_stream::pack_pipelined;

/// Pipeline depth (entries) for the pipelined-pack measurement.
const PACK_ENTRIES: usize = 8;

fn main() {
    let opts = cli::from_env();
    let check = opts.rest.iter().any(|a| a == "--check");
    let n = (256 / opts.scale).max(16);
    let dims = Dims::d3(n, n, n);
    let field = stz_data::synth::miranda_like(dims, opts.seed);
    let (lo, hi) = field.value_range();
    let eb = 1e-3 * (hi - lo);
    let compressor = StzCompressor::new(StzConfig::three_level(eb));
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // Serial references every width must reproduce byte-for-byte.
    let serial_archive = compressor.compress(&field).expect("serial compression");
    let serial_field = serial_archive.decompress().expect("serial decompression");
    let serial_image = pipelined_pack(&compressor, &field, 1);

    let widths: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&w| w <= opts.threads).collect();
    println!("# thread_scaling: {dims} f32, eb {eb:.3e}, reps {}, {cores} core(s)", opts.reps);
    println!(
        "{:<8} {:>12} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "threads", "comp_s", "speedup", "decomp_s", "speedup", "pack_s", "speedup"
    );

    let mut baseline: Option<(f64, f64, f64)> = None;
    let mut comp_speedup_at_4 = None;
    for &w in &widths {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(w).build().expect("pool");

        let (comp_s, archive) =
            timing::time_best(opts.reps, || pool.install(|| compressor.compress_parallel(&field)));
        let archive = archive.expect("compression cannot fail on a valid field");
        let (decomp_s, restored) =
            timing::time_best(opts.reps, || pool.install(|| archive.decompress_parallel()));
        let restored = restored.expect("decompression of a fresh archive cannot fail");
        let (pack_s, image) =
            timing::time_best(opts.reps, || pipelined_pack(&compressor, &field, w));

        assert_eq!(
            archive.as_bytes(),
            serial_archive.as_bytes(),
            "archive must be byte-identical to serial at width {w}"
        );
        assert_eq!(restored, serial_field, "decompression must match serial at width {w}");
        assert_eq!(image, serial_image, "container must be byte-identical at width {w}");

        let (c1, d1, p1) = *baseline.get_or_insert((comp_s, decomp_s, pack_s));
        let speedup = |t: f64, base: f64| if t > 0.0 { base / t } else { 0.0 };
        if w == 4 {
            comp_speedup_at_4 = Some(speedup(comp_s, c1));
        }
        println!(
            "{:<8} {:>12.4} {:>8.2}x {:>12.4} {:>8.2}x {:>12.4} {:>8.2}x",
            w,
            comp_s,
            speedup(comp_s, c1),
            decomp_s,
            speedup(decomp_s, d1),
            pack_s,
            speedup(pack_s, p1)
        );
    }
    println!("# all widths byte-identical: archives, decompressions, containers");

    if check {
        match comp_speedup_at_4 {
            _ if cores < 4 => {
                println!(
                    "# --check: speedup gate skipped ({cores} core(s) < 4); \
                     byte-identity verified above"
                );
            }
            Some(s) if s > 1.5 => {
                println!("# --check: 4-thread compression speedup {s:.2}x > 1.5x")
            }
            Some(s) => {
                eprintln!("--check FAILED: 4-thread compression speedup {s:.2}x <= 1.5x");
                std::process::exit(1);
            }
            None => {
                eprintln!("--check FAILED: no 4-thread run (raise --threads to at least 4)");
                std::process::exit(1);
            }
        }
    }
}

/// Pack [`PACK_ENTRIES`] shifted copies of the field through the pipelined
/// writer at the given width, returning the container image.
fn pipelined_pack(compressor: &StzCompressor, field: &Field<f32>, threads: usize) -> Vec<u8> {
    pack_pipelined(Vec::new(), (0..PACK_ENTRIES).collect::<Vec<usize>>(), threads, |i| {
        let shifted = Field::from_vec(
            field.dims(),
            field.as_slice().iter().map(|&v| v + i as f32 * 0.125).collect(),
        );
        Ok((format!("step{i:03}"), compressor.compress(&shifted)?.into()))
    })
    .expect("pipelined pack of synthetic entries cannot fail")
}
