//! Figure 5: rate-distortion ablation of STZ's prediction optimizations on
//! the Nyx dataset — all seven variants plus the SZ3 reference curve.
//!
//! Each printed series corresponds to one curve of the paper's Figure 5;
//! points are (compression ratio, PSNR) pairs over an error-bound sweep.

use stz_bench::cli;
use stz_core::ablation::{compress_variant, decompress_variant, AblationVariant};
use stz_data::{metrics, Dataset};

const REL_EBS: [f64; 7] = [2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 5e-4, 2e-4];

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::Nyx.scaled_dims(opts.scale);
    let field = match Dataset::Nyx.generate(dims, opts.seed) {
        stz_data::DatasetField::F32(f) => f,
        _ => unreachable!(),
    };
    let (lo, hi) = field.value_range();
    let range = hi - lo;

    println!("# Figure 5: rate-distortion of direct partition, our optimizations, and SZ3");
    println!("# workload: Nyx-like {dims}");
    println!("variant,rel_eb,cr,psnr_db");
    for variant in AblationVariant::all() {
        for rel in REL_EBS {
            let eb = rel * range;
            let bytes = compress_variant(&field, variant, eb).expect("compress");
            let recon = decompress_variant::<f32>(&bytes).expect("decompress");
            let cr = field.nbytes() as f64 / bytes.len() as f64;
            let psnr = metrics::psnr(&field, &recon);
            println!("{},{rel:.0e},{cr:.1},{psnr:.2}", variant.label());
        }
    }
    // SZ3 reference curve (compressing the unpartitioned data).
    for rel in REL_EBS {
        let eb = rel * range;
        let bytes = stz_sz3::compress(&field, &stz_sz3::Sz3Config::absolute(eb));
        let recon: stz_field::Field<f32> = stz_sz3::decompress(&bytes).expect("decompress");
        let cr = field.nbytes() as f64 / bytes.len() as f64;
        let psnr = metrics::psnr(&field, &recon);
        println!("SZ3,{rel:.0e},{cr:.1},{psnr:.2}");
    }
    let _ = opts.threads;
}
