//! Figure 11: rate-distortion of STZ and the four baselines on all four
//! datasets. Top-right is better; the paper's qualitative orderings to
//! check: Ours ≈ SZ3 ≫ MGARD-X > ZFP everywhere; SPERR strongest on
//! Magnetic Reconnection / Miranda, weaker on Nyx.

use stz_bench::{cli, run_quality, Codec};
use stz_data::Dataset;

const REL_EBS: [f64; 6] = [2e-2, 1e-2, 5e-3, 2e-3, 1e-3, 5e-4];

fn main() {
    let opts = cli::from_env();
    println!("# Figure 11: rate-distortion on four datasets");
    println!("dataset,codec,rel_eb,cr,psnr_db,ssim");
    for dataset in Dataset::all() {
        let dims = dataset.scaled_dims(opts.scale);
        let field = dataset.generate(dims, opts.seed);
        for codec in Codec::all() {
            for rel in REL_EBS {
                let (bytes, psnr, ssim, cr) = run_quality(codec, &field, rel);
                let _ = bytes;
                println!(
                    "{},{},{rel:.0e},{cr:.1},{psnr:.2},{ssim:.3}",
                    dataset.name(),
                    codec.name()
                );
            }
        }
    }
}
