//! Table 4: time breakdown (seconds) to decompress (a) the full Miranda
//! dataset, (b) a 3-D ROI box, and (c) a 2-D slice, via random-access
//! decompression.
//!
//! Stages mirror the paper's columns: L1 SZ3 | L2 dec. | L2 pre. | L2 rec.
//! | L3 dec. | L3 pre. | L3 rec. | Sum. The box is 100³ at paper scale
//! (scaled with `--scale`); the slice is a full z-plane.

use stz_bench::cli;
use stz_core::{StzArchive, StzCompressor, StzConfig};
use stz_data::Dataset;
use stz_field::Region;

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::Miranda.scaled_dims(opts.scale);
    let field = match Dataset::Miranda.generate(dims, opts.seed) {
        stz_data::DatasetField::F32(f) => f,
        _ => unreachable!(),
    };
    let (lo, hi) = field.value_range();
    let eb = 1e-3 * (hi - lo);
    let archive: StzArchive<f32> =
        StzCompressor::new(StzConfig::three_level(eb)).compress(&field).expect("compress");

    let box_edge = (100 / opts.scale).clamp(4, dims.nz().min(dims.ny()).min(dims.nx()));
    let b0z = (dims.nz() - box_edge) / 2;
    let b0y = (dims.ny() - box_edge) / 2;
    let b0x = (dims.nx() - box_edge) / 2;
    let cases = [
        ("All", Region::full(dims)),
        ("Box", Region::d3(b0z..b0z + box_edge, b0y..b0y + box_edge, b0x..b0x + box_edge)),
        ("Slice", Region::slice_z(dims, dims.nz() / 2)),
    ];

    println!("# Table 4: random-access decompression time breakdown (s)");
    println!(
        "# Miranda-like {dims}, CR {:.0}; box {box_edge}^3; slice 1x{}x{}",
        archive.compression_ratio(),
        dims.ny(),
        dims.nx()
    );
    println!(
        "case,l1_sz3,l2_dec,l2_pre,l2_rec,l3_dec,l3_pre,l3_rec,sum,decoded_blocks,skipped_blocks"
    );
    for (name, region) in cases {
        let (_, bd) = archive.decompress_region_with_breakdown(&region).expect("random access");
        let l2 = &bd.levels[0];
        let l3 = &bd.levels[1];
        println!(
            "{name},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.3},{},{}",
            bd.l1_sz3,
            l2.decode,
            l2.predict,
            l2.reconstruct,
            l3.decode,
            l3.predict,
            l3.reconstruct,
            bd.total,
            l2.decoded_blocks + l3.decoded_blocks,
            l2.skipped_blocks + l3.skipped_blocks,
        );
    }
}
