//! Figure 12: visual quality (SSIM + PSNR) of all five compressors at
//! matched compression ratios on WarpX and Magnetic Reconnection.
//!
//! The paper matches CR ≈ 296 on WarpX and CR ≈ 215 on Magnetic
//! Reconnection (ZFP lands lower — its fixed-accuracy mode cannot reach the
//! target, also visible here).

use stz_bench::{calibrate, cli, Codec};
use stz_data::{metrics, Dataset, DatasetField};

fn main() {
    let opts = cli::from_env();
    println!("# Figure 12: matched-CR visual quality");
    println!("# (CR targets self-calibrated from SZ3 at rel-eb 2e-3; the paper");
    println!("#  matches at CR 296/215 on the full-size snapshots)");
    println!("dataset,codec,cr,psnr_db,ssim_slice,ssim_volume");
    for dataset in [Dataset::WarpX, Dataset::MagneticReconnection] {
        let dims = dataset.scaled_dims(opts.scale);
        let field = dataset.generate(dims, opts.seed);
        let target_cr = match &field {
            DatasetField::F32(f) => {
                let (lo, hi) = f.value_range();
                let b = stz_sz3::compress(f, &stz_sz3::Sz3Config::absolute(2e-3 * (hi - lo)));
                f.nbytes() as f64 / b.len() as f64
            }
            DatasetField::F64(f) => {
                let (lo, hi) = f.value_range();
                let b = stz_sz3::compress(f, &stz_sz3::Sz3Config::absolute(2e-3 * (hi - lo)));
                f.nbytes() as f64 / b.len() as f64
            }
        };
        for codec in Codec::all() {
            match &field {
                DatasetField::F32(f) => {
                    let (_, bytes) = calibrate::eb_for_target_cr(f, target_cr, 0.05, |fl, eb| {
                        codec.compress(fl, eb)
                    });
                    let recon: stz_field::Field<f32> =
                        codec.decompress(&bytes).expect("decompress");
                    let mid = f.dims().nz() / 2;
                    println!(
                        "{},{},{:.0},{:.1},{:.3},{:.3}",
                        dataset.name(),
                        codec.name(),
                        f.nbytes() as f64 / bytes.len() as f64,
                        metrics::psnr(f, &recon),
                        metrics::ssim(&f.slice_z(mid), &recon.slice_z(mid)),
                        metrics::ssim(f, &recon),
                    );
                }
                DatasetField::F64(f) => {
                    let (_, bytes) = calibrate::eb_for_target_cr(f, target_cr, 0.05, |fl, eb| {
                        codec.compress(fl, eb)
                    });
                    let recon: stz_field::Field<f64> =
                        codec.decompress(&bytes).expect("decompress");
                    let mid = f.dims().nz() / 2;
                    println!(
                        "{},{},{:.0},{:.1},{:.3},{:.3}",
                        dataset.name(),
                        codec.name(),
                        f.nbytes() as f64 / bytes.len() as f64,
                        metrics::psnr(f, &recon),
                        metrics::ssim(&f.slice_z(mid), &recon.slice_z(mid)),
                        metrics::ssim(f, &recon),
                    );
                }
            }
        }
    }
}
