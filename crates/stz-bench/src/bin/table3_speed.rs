//! Table 3: compression and decompression times (seconds) for all five
//! compressors on all four datasets, serial and OMP (8 threads by default).
//!
//! Pass `--stats` to additionally print the §4.4 dependency statistics that
//! explain the parallel-efficiency gap between STZ and SZ3. Error bounds
//! are matched across codecs (same absolute bound, as in the paper's
//! setup).

use stz_bench::{cli, timing, Codec};
use stz_core::stats;
use stz_data::{Dataset, DatasetField};
use stz_field::Field;

fn main() {
    let opts = cli::from_env();
    let want_stats = opts.rest.iter().any(|a| a == "--stats");
    let rel_eb = 1e-3;

    println!("# Table 3: compression/decompression times (s), serial and OMP({})", opts.threads);
    println!("dataset,codec,mode,comp_s,decomp_s,cr");
    for dataset in Dataset::all() {
        let dims = dataset.scaled_dims(opts.scale);
        let field = dataset.generate(dims, opts.seed);
        for codec in Codec::all() {
            match &field {
                DatasetField::F32(f) => run::<f32>(codec, dataset.name(), f, rel_eb, &opts),
                DatasetField::F64(f) => run::<f64>(codec, dataset.name(), f, rel_eb, &opts),
            }
        }
    }

    if want_stats {
        println!();
        println!("# §4.4 dependency statistics (3-level STZ vs SZ3)");
        println!("dataset,stz_root_fraction,stz_independent_fraction,sz3_dependency_fraction");
        for dataset in Dataset::all() {
            let dims = dataset.scaled_dims(opts.scale);
            let s = stats::dependency_stats(dims, 3);
            println!(
                "{},{:.4},{:.4},{:.4}",
                dataset.name(),
                s.root_fraction,
                s.independent_fraction,
                stats::sz3_dependency_fraction(dims)
            );
        }
    }
}

fn run<T: stz_field::Scalar>(
    codec: Codec,
    dataset: &str,
    field: &Field<T>,
    rel_eb: f64,
    opts: &stz_bench::cli::Options,
) {
    let (lo, hi) = field.value_range();
    let eb = rel_eb * (hi - lo);

    let (ct, bytes) = timing::time_best(opts.reps, || codec.compress(field, eb));
    let (dt, _recon) =
        timing::time_best(opts.reps, || codec.decompress::<T>(&bytes).expect("decompress"));
    let cr = field.nbytes() as f64 / bytes.len() as f64;
    println!("{dataset},{},serial,{ct:.3},{dt:.3},{cr:.1}", codec.name());

    let (ct_p, bytes_p) =
        timing::time_best(opts.reps, || codec.compress_parallel(field, eb, opts.threads));
    let (dt_p, _recon) = timing::time_best(opts.reps, || {
        codec.decompress_parallel::<T>(&bytes_p, opts.threads).expect("decompress")
    });
    let cr_p = field.nbytes() as f64 / bytes_p.len() as f64;
    // Mark CR drops from chunked parallel compression (the paper's
    // asterisks on SZ3's OMP rows).
    let marker = if cr_p < cr * 0.99 { "*" } else { "" };
    println!("{dataset},{},omp{marker},{ct_p:.3},{dt_p:.3},{cr_p:.1}", codec.name());
}
