//! Ingestion harness for mutable STZC containers.
//!
//! Grows a container on disk through the [`MutableContainer`] append path:
//! `--entries` synthetic fields are compressed on `--threads` pipelined
//! worker threads and staged in batches of `--batch`, with one durable
//! commit (generation flip) per batch. A second phase appends
//! pre-compressed entries one commit at a time to isolate the append+commit
//! latency distribution from compression cost. The grown container is then
//! compacted and every entry is decoded and byte-compared against a local
//! decompression of the same archive, so the reported throughput is only
//! ever that of *correct* ingestion. Results go to `BENCH_ingest.json`:
//!
//! ```text
//! cargo run --release -p stz-bench --bin ingest_throughput \
//!     [-- --scale 8 --threads 8 --entries 32 --batch 4 \
//!      --out BENCH_ingest.json --baseline bench/baseline.json --check]
//! ```
//!
//! With `--check`, the harness exits non-zero unless ingestion sustained
//! the `ingest.entries_per_s_floor` from `--baseline` (an absolute floor
//! committed far below healthy CI throughput, like the decode floors) and
//! the per-commit append p50 stayed within 10% of the
//! `ingest.append_p50_ms` budget. Byte identity and crash-safe generation
//! accounting are asserted unconditionally.

use std::time::Instant;
use stz_bench::cli;
use stz_bench::json::{arr, obj, Json};
use stz_core::{StzArchive, StzCompressor, StzConfig};
use stz_field::{Dims, Field};
use stz_mutate::{FileBacking, MutableContainer};
use stz_stream::{ContainerReader, PackEntry};

/// Allowed relative p50 growth over the baseline budget.
const P50_REGRESSION_MARGIN: f64 = 0.10;

/// Entries appended one-commit-at-a-time in the latency phase.
const LATENCY_APPENDS: usize = 24;

fn main() {
    let opts = cli::from_env();
    let check = opts.rest.iter().any(|a| a == "--check");
    let out_path = flag_value(&opts.rest, "--out").unwrap_or_else(|| "BENCH_ingest.json".into());
    let baseline_path = flag_value(&opts.rest, "--baseline");
    let entries: usize =
        flag_value(&opts.rest, "--entries").and_then(|v| v.parse().ok()).unwrap_or(32).max(1);
    let batch: usize =
        flag_value(&opts.rest, "--batch").and_then(|v| v.parse().ok()).unwrap_or(4).max(1);
    let threads = opts.threads.max(1);

    let n = (256 / opts.scale).max(16);
    let dims = Dims::d3(n, n, n);
    let raw_bytes_per_entry = (n * n * n * std::mem::size_of::<f32>()) as f64;
    let dir = std::env::temp_dir().join(format!("stz_ingest_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");

    println!(
        "# ingest_throughput: {dims} f32 x {entries} entries, {threads} writer thread(s), \
         commit every {batch} append(s)"
    );

    // --- Phase 1: pipelined bulk ingestion, one generation per batch. ----
    // The compression work rides the same pipelined engine as `stz pack`,
    // so "writer threads" here means concurrent compressors feeding the
    // single staging writer — the container's single-writer invariant holds.
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let grown = dir.join("grown.stzc");
    let mut container =
        MutableContainer::create(FileBacking::create(&grown).expect("create backing"))
            .expect("create container");
    let mut commit_ms: Vec<f64> = Vec::new();
    let wall = Instant::now();
    for batch_start in (0..entries).step_by(batch) {
        let jobs: Vec<usize> = (batch_start..(batch_start + batch).min(entries)).collect();
        let t = Instant::now();
        container
            .append_pipelined(jobs, threads, |i| {
                let field: Field<f32> = stz_data::synth::miranda_like(dims, opts.seed + i as u64);
                let archive = compressor.compress(&field)?;
                Ok((format!("e{i}"), PackEntry::from(archive)))
            })
            .expect("pipelined append");
        container.commit().expect("commit batch");
        commit_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let wall_s = wall.elapsed().as_secs_f64();
    let entries_per_s = entries as f64 / wall_s;
    let raw_mb_per_s = entries as f64 * raw_bytes_per_entry / wall_s / (1 << 20) as f64;
    let generation_after_ingest = container.generation();
    let expected_generation = 1 + commit_ms.len() as u64;
    assert_eq!(
        generation_after_ingest, expected_generation,
        "each batch commit must advance the generation exactly once"
    );

    // --- Phase 2: per-commit append latency on pre-compressed entries. ---
    // Compression is hoisted out of the timed region, so p50/p99 measure
    // the mutation machinery itself: stage + footer write + slot flip +
    // the fsyncs that make the commit crash-durable.
    let lat_archives: Vec<StzArchive<f32>> = (0..LATENCY_APPENDS)
        .map(|i| {
            let field: Field<f32> =
                stz_data::synth::miranda_like(dims, opts.seed + (entries + i) as u64);
            compressor.compress(&field).expect("compress latency entry")
        })
        .collect();
    let lat_path = dir.join("latency.stzc");
    let mut lat_container =
        MutableContainer::create(FileBacking::create(&lat_path).expect("create latency backing"))
            .expect("create latency container");
    let mut append_ms: Vec<f64> = Vec::with_capacity(LATENCY_APPENDS);
    for (i, archive) in lat_archives.iter().enumerate() {
        let entry = PackEntry::from(archive.clone());
        let t = Instant::now();
        lat_container.append(&format!("l{i}"), &entry).expect("append");
        lat_container.commit().expect("commit");
        append_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    drop(lat_container);

    // --- Compaction of the grown container. ------------------------------
    // Bulk ingestion orphans one footer per superseded generation, so
    // compaction has real dead bytes to reclaim.
    let stats_before = container.stats();
    let t = Instant::now();
    let compact = container.compact().expect("compact grown container");
    let compact_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(container);

    // --- Verify: every ingested entry decodes byte-identically. ----------
    let reader = ContainerReader::open_path(&grown).expect("reopen grown container");
    assert_eq!(reader.entry_count(), entries, "compaction must keep every live entry");
    assert_eq!(reader.dead_payload_bytes(), 0, "compaction must leave no dead payload");
    for i in 0..entries {
        let meta = reader.entry_meta(i).expect("entry meta");
        let idx: usize = meta.name().trim_start_matches('e').parse().expect("entry name e<i>");
        let field: Field<f32> = stz_data::synth::miranda_like(dims, opts.seed + idx as u64);
        let expect = compressor.compress(&field).expect("control compress");
        let got = reader.entry::<f32>(i).expect("entry").decompress().expect("decode");
        assert_eq!(
            got.as_slice(),
            expect.decompress().expect("control decode").as_slice(),
            "entry {} must decode identically to a never-mutated control",
            meta.name()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- Aggregate. -------------------------------------------------------
    append_ms.sort_by(|a, b| a.total_cmp(b));
    commit_ms.sort_by(|a, b| a.total_cmp(b));
    let (append_p50, append_p99) = (quantile(&append_ms, 0.50), quantile(&append_ms, 0.99));
    let (commit_p50, commit_p99) = (quantile(&commit_ms, 0.50), quantile(&commit_ms, 0.99));
    println!("{:<18} {:>8} {:>10} {:>10} {:>10}", "phase", "count", "p50_ms", "p99_ms", "max_ms");
    println!(
        "{:<18} {:>8} {:>10.3} {:>10.3} {:>10.3}",
        "append+commit",
        append_ms.len(),
        append_p50,
        append_p99,
        append_ms.last().copied().unwrap_or(0.0)
    );
    println!(
        "{:<18} {:>8} {:>10.3} {:>10.3} {:>10.3}",
        "batch commit",
        commit_ms.len(),
        commit_p50,
        commit_p99,
        commit_ms.last().copied().unwrap_or(0.0)
    );
    println!(
        "# {entries} entries in {wall_s:.3}s = {entries_per_s:.1} entries/s ({raw_mb_per_s:.1} \
         raw MB/s); final generation {} -> {} after compaction, {} bytes reclaimed in \
         {compact_ms:.3} ms",
        generation_after_ingest, compact.generation, compact.reclaimed_bytes
    );

    let doc = obj([
        ("schema", "stz-bench/ingest/v1".into()),
        ("scale", opts.scale.into()),
        ("seed", (opts.seed as usize).into()),
        ("dims", vec![n, n, n].into()),
        ("entries", entries.into()),
        ("writer_threads", threads.into()),
        ("batch", batch.into()),
        ("batches", commit_ms.len().into()),
        ("wall_s", wall_s.into()),
        ("entries_per_s", entries_per_s.into()),
        ("raw_mb_per_s", raw_mb_per_s.into()),
        (
            "append",
            obj([
                ("count", append_ms.len().into()),
                ("p50_ms", append_p50.into()),
                ("p99_ms", append_p99.into()),
                ("max_ms", append_ms.last().copied().unwrap_or(0.0).into()),
                ("histogram_ms", histogram(&append_ms)),
            ]),
        ),
        (
            "batch_commit",
            obj([
                ("count", commit_ms.len().into()),
                ("p50_ms", commit_p50.into()),
                ("p99_ms", commit_p99.into()),
                ("max_ms", commit_ms.last().copied().unwrap_or(0.0).into()),
            ]),
        ),
        (
            "compaction",
            obj([
                ("before_bytes", compact.before_bytes.into()),
                ("after_bytes", compact.after_bytes.into()),
                ("reclaimed_bytes", compact.reclaimed_bytes.into()),
                ("dead_payload_bytes_before", stats_before.dead_payload_bytes.into()),
                ("duration_ms", compact_ms.into()),
            ]),
        ),
        ("generation", compact.generation.into()),
        ("byte_identity", true.into()),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_ingest.json");
    println!("# wrote {out_path}");

    // --- Regression gates vs. the committed baseline. ---------------------
    let mut failed = false;
    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| Json::parse(&t))
        {
            Ok(baseline) => {
                match baseline.get_path(&["ingest", "entries_per_s_floor"]).and_then(Json::as_f64) {
                    Some(floor) if entries_per_s < floor => {
                        eprintln!(
                            "ingest REGRESSION: {entries_per_s:.1} entries/s below the absolute \
                             floor {floor:.1}"
                        );
                        failed = true;
                    }
                    Some(floor) => {
                        println!("# entries/s {entries_per_s:.1} above floor {floor:.1}")
                    }
                    None => println!("# baseline {path} has no ingest.entries_per_s_floor"),
                }
                match baseline.get_path(&["ingest", "append_p50_ms"]).and_then(Json::as_f64) {
                    Some(budget) => {
                        let limit = budget * (1.0 + P50_REGRESSION_MARGIN);
                        if append_p50 > limit {
                            eprintln!(
                                "append p50 REGRESSION: {append_p50:.3} ms > {limit:.3} ms \
                                 (baseline budget {budget:.3} ms + {:.0}%)",
                                100.0 * P50_REGRESSION_MARGIN
                            );
                            failed = true;
                        } else {
                            println!(
                                "# append p50 {append_p50:.3} ms within budget {budget:.3} ms \
                                 (+{:.0}%)",
                                100.0 * P50_REGRESSION_MARGIN
                            );
                        }
                    }
                    None => println!("# baseline {path} has no ingest.append_p50_ms"),
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if check {
        if compact.reclaimed_bytes == 0 {
            eprintln!(
                "--check FAILED: batched ingestion left nothing for compaction to reclaim \
                 ({} commits)",
                commit_ms.len()
            );
            std::process::exit(1);
        }
        if failed {
            eprintln!("--check FAILED: ingestion regressed vs. {:?}", baseline_path);
            std::process::exit(1);
        }
        println!(
            "# --check: byte-identity held for all {entries} entries across {} generations, \
             compaction reclaimed {} bytes",
            compact.generation, compact.reclaimed_bytes
        );
    }
}

/// `--flag value` lookup in the leftover args.
fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1)).cloned()
}

/// Quantile of an ascending-sorted slice (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Log-bucketed latency histogram as `[upper_bound_ms, count]` pairs
/// (geometric bounds from 0.05 ms, factor 2), trailing empty buckets
/// dropped.
fn histogram(sorted: &[f64]) -> Json {
    let mut pairs: Vec<Json> = Vec::new();
    let mut bound = 0.05;
    let mut idx = 0;
    while idx < sorted.len() {
        let count = sorted[idx..].iter().take_while(|&&ms| ms <= bound).count();
        pairs.push(arr([bound.into(), count.into()]));
        idx += count;
        bound *= 2.0;
        if pairs.len() > 40 {
            pairs.push(arr([f64::MAX.into(), (sorted.len() - idx).into()]));
            break;
        }
    }
    arr(pairs)
}
