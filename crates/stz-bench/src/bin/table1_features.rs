//! Table 1: feature matrix of the five compressors, with measured speed and
//! quality classes on a common workload.
//!
//! ```text
//! cargo run --release -p stz-bench --bin table1_features [--scale N]
//! ```

use stz_bench::{cli, timing, Codec};
use stz_data::Dataset;

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::Nyx.scaled_dims(opts.scale);
    let field = match Dataset::Nyx.generate(dims, opts.seed) {
        stz_data::DatasetField::F32(f) => f,
        _ => unreachable!(),
    };
    let (lo, hi) = field.value_range();
    let eb = 1e-3 * (hi - lo);

    println!("# Table 1: Features of different compressors");
    println!("# workload: Nyx-like {dims}, relative eb 1e-3");
    println!("codec,progressive,random_access,comp_time_s,decomp_time_s,psnr_db,cr");
    for codec in [Codec::Sz3, Codec::Sperr, Codec::MgardX, Codec::Zfp, Codec::Stz] {
        let (ct, bytes) = timing::time_best(opts.reps, || codec.compress(&field, eb));
        let (dt, recon) =
            timing::time_best(opts.reps, || codec.decompress::<f32>(&bytes).expect("decompress"));
        let psnr = stz_data::metrics::psnr(&field, &recon);
        let cr = field.nbytes() as f64 / bytes.len() as f64;
        println!(
            "{},{},{},{:.3},{:.3},{:.1},{:.1}",
            codec.name(),
            if codec.supports_progressive() { "yes" } else { "no" },
            if codec.supports_random_access() { "yes" } else { "no" },
            ct,
            dt,
            psnr,
            cr
        );
    }
}
