//! Figure 1: visual similarity of the original WarpX field and its 2×
//! downsampled version (the paper reports SSIM = 0.96, motivating
//! resolution-progressive decompression).
//!
//! The downsample is compared after nearest-neighbour upsampling back to
//! the original grid, i.e. exactly what a viewer of the coarse preview
//! sees.

use stz_bench::cli;
use stz_data::{metrics, Dataset};
use stz_field::{Dims, Field};

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::WarpX.scaled_dims(opts.scale);
    let field = match Dataset::WarpX.generate(dims, opts.seed) {
        stz_data::DatasetField::F64(f) => f,
        _ => unreachable!(),
    };

    println!("# Figure 1: original vs 2x-downsampled WarpX");
    println!("# dims: {dims} (paper: 256x256x2048 vs 128x128x1024)");
    println!("stride,coarse_points,size_fraction,ssim,psnr_db");
    for stride in [2usize, 4] {
        let coarse = field.downsample(stride);
        let upsampled = nearest_upsample(&coarse, dims, stride);
        let ssim = metrics::ssim(&field, &upsampled);
        let psnr = metrics::psnr(&field, &upsampled);
        println!(
            "{},{},{:.4},{:.3},{:.1}",
            stride,
            coarse.len(),
            coarse.len() as f64 / field.len() as f64,
            ssim,
            psnr
        );
    }
}

fn nearest_upsample(coarse: &Field<f64>, full: Dims, stride: usize) -> Field<f64> {
    let cd = coarse.dims();
    Field::from_fn(full, |z, y, x| {
        coarse.get(
            (z / stride).min(cd.nz() - 1),
            (y / stride).min(cd.ny() - 1),
            (x / stride).min(cd.nx() - 1),
        )
    })
}
