//! Figure 13: progressive decompression of the Miranda dataset — SSIM and
//! decompression time at 1/4, 1/2, and full resolution (paper: 256³, 512³,
//! 1024³ of the 1024³ field; CR 447 at full resolution).

use stz_bench::{calibrate, cli, timing};
use stz_core::StzArchive;
use stz_data::{metrics, Dataset};

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::Miranda.scaled_dims(opts.scale);
    let field = match Dataset::Miranda.generate(dims, opts.seed) {
        stz_data::DatasetField::F32(f) => f,
        _ => unreachable!(),
    };

    // The paper quotes CR 447 for the full-resolution Miranda archive.
    let (eb, bytes) = calibrate::eb_for_target_cr(&field, 447.0, 0.1, |f, e| {
        stz_core::StzCompressor::new(stz_core::StzConfig::three_level(e))
            .compress(f)
            .expect("compress")
            .into_bytes()
    });
    let archive = StzArchive::<f32>::from_bytes(bytes).expect("parse");

    println!(
        "# Figure 13: progressive decompression of Miranda (CR {:.0}, eb {eb:.2e})",
        archive.compression_ratio()
    );
    println!("resolution,points,decomp_time_s,bytes_read,ssim_vs_downsample");
    for level in 1..=archive.num_levels() {
        let (t, preview) = timing::time_best(opts.reps, || {
            archive.decompress_level(level).expect("decompress level")
        });
        let stride = 1usize << (archive.num_levels() - level);
        let reference = field.downsample(stride);
        let ssim = metrics::ssim(&reference, &preview);
        println!(
            "{},{},{t:.3},{},{ssim:.3}",
            preview.dims(),
            preview.len(),
            archive.bytes_through_level(level)
        );
    }
}
