//! Figure 3: visual quality on Nyx's baryon-density field at matched
//! compression ratio (paper: CR ≈ 205): naive partition vs SZ3 vs STZ.
//!
//! The paper's figure is a rendered slice; its caption quantifies the
//! comparison as SSIM/PSNR at CR 204/205/206 — those are the numbers this
//! binary regenerates (SSIM on the central 2-D slice, PSNR on the volume).

use stz_bench::{calibrate, cli};
use stz_core::ablation::{compress_variant, decompress_variant, AblationVariant};
use stz_data::{metrics, Dataset};
use stz_field::Field;

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::Nyx.scaled_dims(opts.scale);
    let field = match Dataset::Nyx.generate(dims, opts.seed) {
        stz_data::DatasetField::F32(f) => f,
        _ => unreachable!(),
    };
    // The paper matches all methods at CR ≈ 205 on the full 512³ snapshot.
    // Synthetic laptop-scale fields are rougher per grid cell, so we match
    // at the CR SZ3 achieves at a reference quality point instead — the
    // comparison stays matched-CR, which is what Fig. 3 is about. Running
    // with --scale 1 approaches the paper's regime.
    let (lo, hi) = field.value_range();
    let ref_bytes = stz_sz3::compress(&field, &stz_sz3::Sz3Config::absolute(2e-4 * (hi - lo)));
    let target_cr = field.nbytes() as f64 / ref_bytes.len() as f64;

    println!("# Figure 3: Partition vs SZ3 vs STZ on Nyx at matched CR (~{target_cr:.0})");
    println!("method,cr,psnr_db,ssim_slice,ssim_volume");

    let mid = field.dims().nz() / 2;
    // Baryon density spans ~4 decades; the paper's renderings (and any
    // useful slice comparison) are effectively log-scaled, so the slice
    // SSIM is computed on log10(1 + v) — the numeric analogue of the
    // colormapped image comparison.
    let log_map = |f: &Field<f32>| f.map(|v| (1.0 + v.max(0.0)).log10());
    let report = |name: &str, bytes: &[u8], recon: &Field<f32>| {
        let cr = field.nbytes() as f64 / bytes.len() as f64;
        let psnr = metrics::psnr(&field, recon);
        let ssim_slice =
            metrics::ssim(&log_map(&field.slice_z(mid)), &log_map(&recon.slice_z(mid)));
        let ssim_vol = metrics::ssim(&field, recon);
        println!("{name},{cr:.0},{psnr:.1},{ssim_slice:.3},{ssim_vol:.3}");
    };

    // Naive partition ("Partition", Fig. 3b).
    let (_, bytes) = calibrate::eb_for_target_cr(&field, target_cr, 0.05, |f, eb| {
        compress_variant(f, AblationVariant::PartitionOnly, eb).expect("compress")
    });
    let recon = decompress_variant::<f32>(&bytes).expect("decompress");
    report("Partition", &bytes, &recon);

    // SZ3 on the unpartitioned data (Fig. 3c).
    let (_, bytes) = calibrate::eb_for_target_cr(&field, target_cr, 0.05, |f, eb| {
        stz_sz3::compress(f, &stz_sz3::Sz3Config::absolute(eb))
    });
    let recon: Field<f32> = stz_sz3::decompress(&bytes).expect("decompress");
    report("SZ3", &bytes, &recon);

    // STZ with all optimizations (Fig. 3d).
    let (_, bytes) = calibrate::eb_for_target_cr(&field, target_cr, 0.05, |f, eb| {
        compress_variant(f, AblationVariant::ThreeLevelAll, eb).expect("compress")
    });
    let recon = decompress_variant::<f32>(&bytes).expect("decompress");
    report("Ours", &bytes, &recon);
}
