//! Figure 10: ROI extraction on the Nyx dataset — max-value thresholding at
//! the halo-formation threshold 81.66 captures all halos while touching a
//! tiny fraction of the domain (paper: 0.69%).
//!
//! Demonstrates the full workflow of §3.3: compress once, progressively
//! decompress the coarse preview, select ROI tiles on it, then
//! random-access decompress only those tiles at full resolution.

use stz_bench::cli;
use stz_core::roi::{self, RoiCriterion, RoiStat};
use stz_core::{StzCompressor, StzConfig};
use stz_data::Dataset;

const HALO_THRESHOLD: f64 = 81.66;

fn main() {
    let opts = cli::from_env();
    let dims = Dataset::Nyx.scaled_dims(opts.scale);
    let field = match Dataset::Nyx.generate(dims, opts.seed) {
        stz_data::DatasetField::F32(f) => f,
        _ => unreachable!(),
    };
    let (lo, hi) = field.value_range();
    let eb = 1e-3 * (hi - lo);
    let archive =
        StzCompressor::new(StzConfig::three_level(eb)).compress(&field).expect("compress");

    // Step 1: coarse preview from levels 1–2 (1/8 of the points).
    let preview = archive.decompress_level(2).expect("preview");
    let stride = 1usize << (archive.num_levels() - 2);

    // Step 2: ROI selection on the preview. Stride-2 sampling attenuates
    // halo peaks (the brightest cell may fall off-lattice), so detection
    // uses a margin below the physical threshold, and selected tiles are
    // dilated by one coarse cell so halos straddling tile borders stay
    // whole.
    let detection = HALO_THRESHOLD * 0.5;
    let tiles = roi::select_regions(
        &preview,
        [2, 2, 2],
        RoiCriterion::Threshold(RoiStat::MaxValue, detection),
    );

    // Step 3: random-access decompression of each ROI at full resolution.
    let regions: Vec<_> = tiles
        .iter()
        .map(|t| roi::upscale_region(&t.dilate(1, preview.dims()), stride, dims))
        .collect();
    let mut roi_points = 0usize;
    for region in &regions {
        let roi_field = archive.decompress_region(region).expect("roi");
        roi_points += roi_field.len();
    }
    // Coverage accounting against ground truth (regions may overlap after
    // dilation, so count each halo point once).
    let mut total_halo_points = 0usize;
    let mut captured = 0usize;
    for z in 0..dims.nz() {
        for y in 0..dims.ny() {
            for x in 0..dims.nx() {
                if (field.get(z, y, x) as f64) > HALO_THRESHOLD {
                    total_halo_points += 1;
                    if regions.iter().any(|r| r.contains(z, y, x)) {
                        captured += 1;
                    }
                }
            }
        }
    }

    println!("# Figure 10: ROI extraction with max-value thresholding at {HALO_THRESHOLD}");
    println!("# Nyx-like {dims}");
    println!("metric,value");
    println!("halo_points_total,{total_halo_points}");
    println!("halo_points_captured,{captured}");
    println!("roi_tiles,{}", tiles.len());
    println!("roi_fraction,{:.4}", roi_points as f64 / field.len() as f64);
    println!(
        "preview_bytes_fraction,{:.4}",
        archive.bytes_through_level(1) as f64 / archive.compressed_len() as f64
    );
    assert!(
        captured * 100 >= total_halo_points * 95,
        "ROI should capture (almost) all halo points"
    );
}
