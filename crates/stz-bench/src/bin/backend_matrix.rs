//! Cross-backend benchmark matrix: every registered codec over every
//! evaluation dataset.
//!
//! For each `(backend, dataset)` cell the harness measures compression
//! ratio, compress/decompress throughput, and the observed maximum
//! point-wise error at a 1e-3 value-range-relative bound — the numbers
//! behind the README's backend-selection table — and writes them to
//! `BENCH_backends.json` for the CI perf-regression gate.
//!
//! ```text
//! cargo run --release -p stz-bench --bin backend_matrix -- \
//!     [--scale 16] [--reps 3] [--out BENCH_backends.json] \
//!     [--baseline bench/baseline.json --check]
//! ```
//!
//! With `--check`, the run fails (exit 1) if, against the committed
//! baseline, any cell's compression ratio drops more than 10%, its max
//! error grows more than 10%, a baseline cell disappeared, or any cell
//! violates its error bound outright. Ratio and max error are
//! deterministic for a given `--scale`/`--seed`, so the 10% headroom only
//! absorbs intentional algorithm tuning — not machine noise. Throughput
//! is machine-dependent and therefore only gated against the *absolute*
//! per-backend decode floors in the baseline's `decode_floors` section
//! (committed far below any healthy run, like the serve p50 budgets) —
//! they catch an accidental order-of-magnitude decode regression, not
//! run-to-run noise.

use stz_backend::{registry, BackendScalar, Codec};
use stz_bench::json::{obj, Json};
use stz_bench::{cli, timing};
use stz_data::{metrics, Dataset, DatasetField};
use stz_field::Field;
use stz_simd::Lane;

/// Value-range-relative error bound of every cell (the paper's default).
const EB_REL: f64 = 1e-3;

struct Row {
    backend: &'static str,
    dataset: &'static str,
    dims: String,
    type_name: &'static str,
    eb_abs: f64,
    ratio: f64,
    max_err: f64,
    compress_mbps: f64,
    decompress_mbps: f64,
}

fn run_cell<T: BackendScalar>(
    codec: &'static dyn Codec,
    dataset: Dataset,
    field: &Field<T>,
    reps: usize,
) -> Row {
    let (lo, hi) = field.value_range();
    let eb = EB_REL * (hi - lo);
    let (comp_s, bytes) =
        timing::time_best(reps, || T::compress_with(codec, field, eb).expect("compression"));
    let (decomp_s, recon) =
        timing::time_best(reps, || T::decompress_with(codec, &bytes).expect("roundtrip"));
    Row {
        backend: codec.name(),
        dataset: dataset.name(),
        dims: format!("{:?}", field.dims()),
        type_name: if T::TYPE_TAG == 0 { "f32" } else { "f64" },
        eb_abs: eb,
        ratio: field.nbytes() as f64 / bytes.len() as f64,
        max_err: metrics::max_abs_error(field, &recon),
        compress_mbps: timing::throughput_mbs(field.nbytes(), comp_s),
        decompress_mbps: timing::throughput_mbs(field.nbytes(), decomp_s),
    }
}

/// One ported hot-loop kernel measured per executable lane, in million
/// points per second (best of `reps` passes).
struct KernelRow {
    kernel: &'static str,
    mpts: Vec<(Lane, f64)>,
}

/// Measure the three ported SIMD kernel families through the public
/// dispatch API, one row per kernel, one column per executable lane.
///
/// End-to-end `decompress_mbps` blends the kernels with the shared
/// lane-independent stages (entropy decode, bookkeeping, allocation), so
/// on short rows the lane speedup is diluted; this section isolates the
/// vectorized loops themselves — the honest "how much faster is the AVX2
/// kernel" number that `docs/SIMD.md` quotes.
fn kernel_matrix(reps: usize) -> Vec<KernelRow> {
    // 64 rows of m = 61 stride-2 points over a 128-wide lattice — the
    // geometry of a level-3 row at production scale, sized to stay
    // cache-resident so the numbers reflect the kernels rather than DRAM
    // bandwidth (each pass re-walks the same 64 rows).
    const DIM: usize = 128;
    const ROWS: usize = 64;
    const PASSES: usize = 32;
    const M: usize = (DIM - 6) / 2;
    let reps = reps.max(3);
    let buf: Vec<f64> = (0..DIM * ROWS).map(|i| (i % 97) as f64 * 0.125 - 6.0).collect();
    let codes: Vec<f64> = (0..M).map(|i| (i % 11) as f64 - 5.0).collect();
    let st = stz_simd::Stencil::new(
        true,
        2,
        [-1, 1, 0, 0, 0, 0, 0, 0],
        [-3, 3, 0, 0, 0, 0, 0, 0],
        9.0 / 16.0,
        -1.0 / 16.0,
    );
    let lanes = stz_simd::available_lanes();
    let points = (PASSES * ROWS * M) as f64;
    let mut out = vec![0.0f64; M];
    let mut rows: Vec<KernelRow> = Vec::new();

    let mut measure = |kernel: &'static str, f: &mut dyn FnMut(Lane)| {
        let mpts = lanes
            .iter()
            .map(|&lane| {
                let (secs, _) = timing::time_best(reps, || f(lane));
                (lane, points / secs / 1e6)
            })
            .collect();
        rows.push(KernelRow { kernel, mpts });
    };

    measure("predict+recon f64", &mut |lane| {
        for _ in 0..PASSES {
            for r in 0..ROWS {
                stz_simd::predict_recon_run_f64(
                    lane,
                    &buf,
                    r * DIM + 3,
                    &st,
                    &codes,
                    2e-3,
                    &mut out,
                );
            }
        }
    });
    measure("predict+recon f32", &mut |lane| {
        for _ in 0..PASSES {
            for r in 0..ROWS {
                stz_simd::predict_recon_run_f32(
                    lane,
                    &buf,
                    r * DIM + 3,
                    &st,
                    &codes,
                    2e-3,
                    &mut out,
                );
            }
        }
    });

    let n = ROWS * M;
    let actuals = &buf[..n];
    let preds: Vec<f64> = buf[1..n + 1].to_vec();
    let mut q = vec![0.0f64; n];
    let mut recon = vec![0.0f64; n];
    let mut esc = vec![0u8; n];
    measure("quantize f64", &mut |lane| {
        for _ in 0..PASSES {
            stz_simd::quantize_run_f64(
                lane, actuals, &preds, 1e-3, 2e-3, 32768.0, &mut q, &mut recon, &mut esc,
            );
        }
    });
    measure("quantize f32", &mut |lane| {
        for _ in 0..PASSES {
            stz_simd::quantize_run_f32(
                lane, actuals, &preds, 1e-3, 2e-3, 32768.0, &mut q, &mut recon, &mut esc,
            );
        }
    });

    let mut gathered = vec![0.0f64; n];
    let mut dst = vec![0.0f64; buf.len()];
    measure("gather2 f64", &mut |lane| {
        for _ in 0..PASSES {
            stz_simd::gather2_f64(lane, &buf, 1, &mut gathered);
        }
    });
    measure("scatter2 f64", &mut |lane| {
        for _ in 0..PASSES {
            stz_simd::scatter2_f64(lane, &gathered, &mut dst, 1);
        }
    });
    rows
}

fn main() {
    let opts = cli::from_env();
    let mut out_path = "BENCH_backends.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut check = false;
    let mut it = opts.rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next().expect("--out requires a path").clone(),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline requires a path").clone())
            }
            "--check" => check = true,
            other => panic!("unknown flag {other:?}"),
        }
    }

    let lane = stz_simd::announce();
    println!(
        "# backend_matrix: scale {}, seed {}, reps {}, eb {EB_REL:.0e} (relative), simd {lane}",
        opts.scale, opts.seed, opts.reps
    );
    println!(
        "{:<8} {:<22} {:<12} {:>9} {:>12} {:>11} {:>11}",
        "backend", "dataset", "dims", "ratio", "max_err", "comp_MB/s", "decomp_MB/s"
    );

    let mut rows: Vec<Row> = Vec::new();
    for dataset in Dataset::all() {
        let field = dataset.generate(dataset.scaled_dims(opts.scale), opts.seed);
        for codec in registry().all() {
            let row = match &field {
                DatasetField::F32(f) => run_cell(codec, dataset, f, opts.reps),
                DatasetField::F64(f) => run_cell(codec, dataset, f, opts.reps),
            };
            println!(
                "{:<8} {:<22} {:<12} {:>8.1}x {:>12.3e} {:>11.1} {:>11.1}",
                row.backend,
                row.dataset,
                row.dims,
                row.ratio,
                row.max_err,
                row.compress_mbps,
                row.decompress_mbps
            );
            rows.push(row);
        }
    }

    let kernels = kernel_matrix(opts.reps.max(9));
    println!("# simd kernel hot loops (Mpts/s, best-of-reps, m=61 rows; see docs/SIMD.md)");
    print!("{:<18}", "kernel");
    for (lane, _) in &kernels[0].mpts {
        print!(" {:>9}", lane.name());
    }
    println!(" {:>13}", "widest/scalar");
    for k in &kernels {
        print!("{:<18}", k.kernel);
        for (_, mpts) in &k.mpts {
            print!(" {mpts:>9.1}");
        }
        let scalar = k.mpts[0].1;
        let widest = k.mpts.last().map_or(scalar, |&(_, m)| m);
        println!(" {:>12.2}x", widest / scalar);
    }

    let doc = obj([
        ("schema", Json::Str("stz-backend-matrix/v1".into())),
        ("scale", Json::Num(opts.scale as f64)),
        ("seed", Json::Num(opts.seed as f64)),
        ("reps", Json::Num(opts.reps as f64)),
        ("eb_rel", Json::Num(EB_REL)),
        ("simd_lane", Json::Str(lane.name().into())),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        obj([
                            ("backend", Json::Str(r.backend.into())),
                            ("dataset", Json::Str(r.dataset.into())),
                            ("dims", Json::Str(r.dims.clone())),
                            ("type", Json::Str(r.type_name.into())),
                            ("eb_abs", Json::Num(r.eb_abs)),
                            ("ratio", Json::Num(r.ratio)),
                            ("max_err", Json::Num(r.max_err)),
                            ("compress_mbps", Json::Num(r.compress_mbps)),
                            ("decompress_mbps", Json::Num(r.decompress_mbps)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "simd_kernels",
            Json::Arr(
                kernels
                    .iter()
                    .map(|k| {
                        let mut fields: Vec<(&str, Json)> =
                            vec![("kernel", Json::Str(k.kernel.into()))];
                        fields.extend(
                            k.mpts.iter().map(|&(lane, mpts)| (lane.name(), Json::Num(mpts))),
                        );
                        obj(fields)
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("writing the results file");
    println!("# wrote {out_path}");

    // Error bounds are a hard invariant regardless of any baseline.
    let mut failures: Vec<String> = Vec::new();
    for r in &rows {
        if r.max_err > r.eb_abs * (1.0 + 1e-9) {
            failures.push(format!(
                "{}/{}: max error {:.3e} exceeds bound {:.3e}",
                r.backend, r.dataset, r.max_err, r.eb_abs
            ));
        }
    }

    if check {
        let path = baseline_path.as_deref().expect("--check requires --baseline <path>");
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = Json::parse(&text).unwrap_or_else(|e| panic!("bad baseline {path}: {e}"));
        check_against_baseline(&baseline, &rows, opts.scale, &mut failures);
    }

    if failures.is_empty() {
        if check {
            println!("# --check: all cells within 10% of the baseline");
        }
    } else {
        for f in &failures {
            eprintln!("--check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Largest tolerated relative regression of a gated metric (10%).
const TOLERANCE: f64 = 0.10;

fn check_against_baseline(baseline: &Json, rows: &[Row], scale: usize, failures: &mut Vec<String>) {
    if baseline.get("scale").and_then(Json::as_f64) != Some(scale as f64) {
        failures.push(format!(
            "baseline was recorded at scale {:?}, this run used {scale} (rerun with the \
             baseline's scale or regenerate it)",
            baseline.get("scale").and_then(Json::as_f64)
        ));
        return;
    }
    let Some(base_rows) = baseline.get("results").and_then(Json::as_arr) else {
        failures.push("baseline has no results array".into());
        return;
    };
    // Absolute decode-throughput floors: every cell of a listed backend
    // must clear its floor. These are the only throughput gate — committed
    // with enough headroom that only a structural regression (e.g. the
    // SIMD dispatch silently pinning scalar, or an accidental O(n²)) can
    // trip them on a noisy runner.
    if let Some(Json::Obj(floors)) = baseline.get_path(&["decode_floors", "mbps"]) {
        for (backend, floor) in floors {
            let Some(floor) = floor.as_f64() else {
                failures.push(format!("decode floor for {backend} is not a number"));
                continue;
            };
            for r in rows.iter().filter(|r| r.backend == backend.as_str()) {
                // NaN (a malformed measurement) must fail the gate too.
                if r.decompress_mbps < floor || r.decompress_mbps.is_nan() {
                    failures.push(format!(
                        "{}/{}: decode throughput {:.1} MB/s below the {floor:.1} MB/s floor",
                        r.backend, r.dataset, r.decompress_mbps
                    ));
                }
            }
        }
    }
    for base in base_rows {
        let (Some(backend), Some(dataset)) = (
            base.get("backend").and_then(Json::as_str),
            base.get("dataset").and_then(Json::as_str),
        ) else {
            failures.push("baseline row missing backend/dataset".into());
            continue;
        };
        let Some(cur) = rows.iter().find(|r| r.backend == backend && r.dataset == dataset) else {
            failures.push(format!("{backend}/{dataset}: cell present in baseline but not run"));
            continue;
        };
        let base_ratio = base.get("ratio").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let base_err = base.get("max_err").and_then(Json::as_f64).unwrap_or(f64::NAN);
        // A malformed baseline cell (NaN floor/ceiling) must fail the gate,
        // not slip through a false comparison.
        let ratio_floor = base_ratio * (1.0 - TOLERANCE);
        if cur.ratio < ratio_floor || !ratio_floor.is_finite() {
            failures.push(format!(
                "{backend}/{dataset}: compression ratio regressed {:.2}x -> {:.2}x (>10%)",
                base_ratio, cur.ratio
            ));
        }
        let err_ceiling = base_err * (1.0 + TOLERANCE);
        if cur.max_err > err_ceiling || !err_ceiling.is_finite() {
            failures.push(format!(
                "{backend}/{dataset}: max error regressed {:.3e} -> {:.3e} (>10%)",
                base_err, cur.max_err
            ));
        }
    }
}
