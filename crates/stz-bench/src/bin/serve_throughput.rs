//! Throughput harness for the stz-serve archive server, driven through
//! the unified access API.
//!
//! Hosts a synthetic container on an ephemeral loopback port, then drives
//! it with `--threads` concurrent clients, each a
//! [`RemoteStore`] issuing a FULL / ROI /
//! PROGRESSIVE [`Fetch`] mix. Expected bytes come from a
//! [`FileStore`] over the same container — the
//! local and remote transports of the same `Store` API, asserted
//! byte-identical per response. Reports requests/sec, per-kind p50/p99
//! latency with log-bucketed histograms, and the server's cache hit rate,
//! written as nested JSON to `BENCH_serve.json`:
//!
//! ```text
//! cargo run --release -p stz-bench --bin serve_throughput \
//!     [-- --scale 8 --threads 8 --requests 48 --out BENCH_serve.json \
//!      --baseline bench/baseline.json --check --metrics]
//! ```
//!
//! With `--metrics`, the harness also fetches the server's own telemetry
//! registry over one `METRICS` round-trip and embeds the server-side
//! per-kind request counts and latency quantiles as a `server` section in
//! the JSON, printing a client-vs-server p50 comparison (the two views
//! agree within one log-2 histogram bucket).
//!
//! With `--traces`, the harness fetches the server's tail-sampled request
//! traces over one `TRACE_GET` round-trip, embeds a per-kind summary
//! (slowest trace, span count, dominant stage) as a `traces` section in
//! the JSON, and writes the full span trees as Chrome trace-event JSON to
//! `--trace-out` (default `BENCH_serve_trace.json`) — loadable in
//! Perfetto or chrome://tracing as a CI artifact.
//!
//! With `--check`, the harness exits non-zero unless the
//! repeated-request workload produced a nonzero cache hit rate, and —
//! when `--baseline` points at a JSON file with a `serve.kinds.*.p50_ms`
//! section — unless every kind's p50 latency stays within 10% of its
//! baseline. The committed `bench/baseline.json` records latency
//! *budgets* (measured p50 with generous headroom for noisy CI runners),
//! so the gate catches order-of-magnitude regressions, not scheduler
//! jitter.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use stz_access::{EntrySel, Fetch, FileStore, RemoteStore, Store};
use stz_bench::cli;
use stz_bench::json::{arr, obj, Json};
use stz_core::{StzCompressor, StzConfig};
use stz_field::{Dims, Field, Region};
use stz_serve::{Client, ServeOptions, Server};
use stz_stream::pack_to_file;

/// Entries packed into the hosted container.
const ENTRIES: usize = 2;

/// Allowed relative p50 growth over the baseline budget.
const P50_REGRESSION_MARGIN: f64 = 0.10;

fn main() {
    let opts = cli::from_env();
    let check = opts.rest.iter().any(|a| a == "--check");
    let want_metrics = opts.rest.iter().any(|a| a == "--metrics");
    let want_traces = opts.rest.iter().any(|a| a == "--traces");
    let out_path = flag_value(&opts.rest, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let trace_out =
        flag_value(&opts.rest, "--trace-out").unwrap_or_else(|| "BENCH_serve_trace.json".into());
    let baseline_path = flag_value(&opts.rest, "--baseline");
    let requests: usize =
        flag_value(&opts.rest, "--requests").and_then(|v| v.parse().ok()).unwrap_or(48);
    let clients = opts.threads.max(1);

    // --- Host a synthetic container. -----------------------------------
    let n = (256 / opts.scale).max(16);
    let dims = Dims::d3(n, n, n);
    let dir = std::env::temp_dir().join(format!("stz_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let container = dir.join("bench.stzc");
    let fields: Vec<Field<f32>> =
        (0..ENTRIES).map(|i| stz_data::synth::miranda_like(dims, opts.seed + i as u64)).collect();
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let archives: Vec<_> = fields
        .iter()
        .map(|f| compressor.compress(f).expect("compression of a synthetic field"))
        .collect();
    let named: Vec<(String, &stz_core::StzArchive<f32>)> =
        archives.iter().enumerate().map(|(i, a)| (format!("t{i}"), a)).collect();
    let name_refs: Vec<(&str, &stz_core::StzArchive<f32>)> =
        named.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    pack_to_file(&container, &name_refs).expect("pack bench container");

    // --- The request mix, with expected bytes from the local transport
    // of the same Store API. --------------------------------------------
    let roi = Region::d3(n / 4..n / 2, n / 4..n / 2, n / 4..n / 2);
    let local = FileStore::open_path(&container).expect("reopen bench container");
    let mut mix: Vec<(u32, Fetch, Vec<u8>)> = Vec::new();
    for i in 0..ENTRIES as u32 {
        let entry = local.open(&EntrySel::Index(i)).expect("open local entry");
        for fetch in [Fetch::Full, Fetch::Region(roi.clone()), Fetch::Level(1)] {
            let expect = entry.fetch(&fetch).expect("local decode").data;
            mix.push((i, fetch, expect));
        }
    }
    let mix = Arc::new(mix);

    let server = Server::bind(ServeOptions {
        root: dir.clone(),
        addr: "127.0.0.1:0".into(),
        cache_bytes: 64 << 20,
        ..ServeOptions::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("spawn accept loop");

    println!(
        "# serve_throughput: {dims} f32 x {ENTRIES} entries, {clients} client(s) x {requests} \
         requests, mix FULL/ROI/PROGRESSIVE via stz-access RemoteStore"
    );

    // --- Drive it. ------------------------------------------------------
    let wall = Instant::now();
    let per_client: Vec<Vec<(&'static str, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mix = Arc::clone(&mix);
                scope.spawn(move || {
                    let store = RemoteStore::connect(addr.to_string().as_str(), "bench")
                        .expect("client connect");
                    // Open each entry once; fetches share the connection.
                    let entries: Vec<_> = (0..ENTRIES as u32)
                        .map(|i| store.open(&EntrySel::Index(i)).expect("open remote entry"))
                        .collect();
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        // Stagger start positions so clients collide on the
                        // cache instead of marching in lockstep.
                        let (entry_idx, fetch, expect) = &mix[(r + c) % mix.len()];
                        let t = Instant::now();
                        let fetched =
                            entries[*entry_idx as usize].fetch(fetch).expect("remote fetch");
                        lat.push((kind_label(fetch), t.elapsed().as_secs_f64() * 1e3));
                        assert_eq!(
                            &fetched.data, expect,
                            "client {c} request {r}: response differs from local decode"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut client = Client::connect(addr).expect("stats connection");
    let stats = client.stats().expect("stats");
    // --metrics: one METRICS round-trip for the server's own per-kind
    // histograms, taken while the server is still alive.
    let server_samples = want_metrics.then(|| {
        let text = client.metrics().expect("metrics round-trip");
        stz_telemetry::expo::parse(&text).expect("server exposition parses")
    });
    // --traces: the tail-sampled span trees, also while the server lives.
    let traces = want_traces.then(|| client.trace().expect("trace round-trip"));
    drop(client);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);

    // --- Aggregate. ------------------------------------------------------
    let total = clients * requests;
    let rps = total as f64 / wall_s;
    let mut by_kind: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for (kind, ms) in per_client.into_iter().flatten() {
        by_kind.entry(kind).or_default().push(ms);
    }

    println!("{:<14} {:>8} {:>10} {:>10} {:>10}", "kind", "count", "p50_ms", "p99_ms", "max_ms");
    let mut kinds_json: Vec<(&'static str, Json)> = Vec::new();
    let mut p50_by_kind: BTreeMap<&'static str, f64> = BTreeMap::new();
    for (kind, lat) in &mut by_kind {
        lat.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99) = (quantile(lat, 0.50), quantile(lat, 0.99));
        p50_by_kind.insert(kind, p50);
        println!(
            "{:<14} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            kind,
            lat.len(),
            p50,
            p99,
            lat.last().copied().unwrap_or(0.0)
        );
        kinds_json.push((
            kind,
            obj([
                ("count", lat.len().into()),
                ("p50_ms", p50.into()),
                ("p99_ms", p99.into()),
                ("max_ms", lat.last().copied().unwrap_or(0.0).into()),
                ("histogram_ms", histogram(lat)),
            ]),
        ));
    }
    println!(
        "# {total} requests in {wall_s:.3}s = {rps:.0} req/s; cache hit rate {:.1}% \
         ({} hits / {} misses / {} evictions)",
        100.0 * stats.hit_rate(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions
    );

    // --- Server-side view of the same workload (--metrics). -------------
    // The server's `stzp_request_latency_ns` histograms cover the same
    // requests the clients timed, minus client-side connect/serialize
    // cost, so server p50 tracks client p50 within one log-2 bucket
    // (quantiles report the bucket's upper bound, so they can round up).
    let server_json = server_samples.as_ref().map(|samples| {
        let ns_to_ms = |v: f64| if v.is_finite() { v / 1e6 } else { f64::MAX };
        let mut per_kind: Vec<(&'static str, Json)> = Vec::new();
        for kind in by_kind.keys() {
            let labels = [("kind", *kind)];
            let count = stz_telemetry::expo::sample_value(samples, "stzp_requests_total", &labels)
                .unwrap_or(0.0) as u64;
            let q = |q: f64| {
                stz_telemetry::expo::histogram_quantile(
                    samples,
                    "stzp_request_latency_ns",
                    &labels,
                    q,
                )
                .map(ns_to_ms)
            };
            let (p50, p99) = (q(0.50), q(0.99));
            println!(
                "# server [{kind}]: {count} requests, p50 {} ms (client {:.3} ms), p99 {} ms",
                p50.map_or("-".into(), |v| format!("{v:.3}")),
                p50_by_kind.get(kind).copied().unwrap_or(0.0),
                p99.map_or("-".into(), |v| format!("{v:.3}")),
            );
            per_kind.push((
                kind,
                obj([
                    ("count", count.into()),
                    ("p50_ms", p50.unwrap_or(0.0).into()),
                    ("p99_ms", p99.unwrap_or(0.0).into()),
                ]),
            ));
        }
        obj(per_kind)
    });

    // --- Per-kind trace summary + Chrome-trace artifact (--traces). -----
    let traces_json = traces.as_ref().map(|traces| {
        let chrome = stz_telemetry::trace::render_chrome_trace(traces);
        std::fs::write(&trace_out, format!("{chrome}\n")).expect("write trace artifact");
        println!(
            "# wrote {trace_out} ({} retained trace(s), Chrome trace-event JSON — load in \
             Perfetto or chrome://tracing)",
            traces.len()
        );
        // Slowest retained trace per kind, with its dominant stage (the
        // longest non-root span — where that worst request spent its time).
        let mut slowest: BTreeMap<&str, &stz_telemetry::trace::TraceRecord> = BTreeMap::new();
        for t in traces {
            let e = slowest.entry(t.kind.as_str()).or_insert(t);
            if t.duration_ns > e.duration_ns {
                *e = t;
            }
        }
        let mut per_kind: Vec<(String, Json)> = Vec::new();
        for (kind, t) in slowest {
            let root_id = t.root().map(|r| r.id).unwrap_or(0);
            let stage = t.spans.iter().filter(|s| s.id != root_id).max_by_key(|s| s.duration_ns);
            let (stage_name, stage_ms) =
                stage.map(|s| (s.name.as_str(), s.duration_ns as f64 / 1e6)).unwrap_or(("-", 0.0));
            println!(
                "# trace [{kind}]: slowest {:.3} ms over {} span(s), dominant stage {stage_name} \
                 ({stage_ms:.3} ms)",
                t.duration_ns as f64 / 1e6,
                t.spans.len(),
            );
            per_kind.push((
                kind.to_string(),
                obj([
                    ("slowest_ms", (t.duration_ns as f64 / 1e6).into()),
                    ("spans", t.spans.len().into()),
                    ("dominant_stage", stage_name.to_string().into()),
                    ("dominant_stage_ms", stage_ms.into()),
                    ("error", t.error.into()),
                ]),
            ));
        }
        Json::Obj(per_kind.into_iter().collect())
    });

    let mut fields_json: Vec<(&'static str, Json)> = vec![
        ("schema", "stz-bench/serve/v1".into()),
        ("scale", opts.scale.into()),
        ("seed", (opts.seed as usize).into()),
        ("dims", vec![n, n, n].into()),
        ("entries", ENTRIES.into()),
        ("clients", clients.into()),
        ("requests_per_client", requests.into()),
        ("requests", total.into()),
        ("wall_s", wall_s.into()),
        ("requests_per_s", rps.into()),
        (
            "cache",
            obj([
                ("hits", stats.cache_hits.into()),
                ("misses", stats.cache_misses.into()),
                ("evictions", stats.cache_evictions.into()),
                ("entries", stats.cache_entries.into()),
                ("bytes", stats.cache_bytes.into()),
                ("capacity", stats.cache_capacity.into()),
                ("hit_rate", stats.hit_rate().into()),
            ]),
        ),
        ("kinds", obj(kinds_json)),
        ("byte_identity", true.into()),
    ];
    if let Some(server) = server_json {
        fields_json.push(("server", server));
    }
    if let Some(tj) = traces_json {
        fields_json.push(("traces", tj));
    }
    let doc = obj(fields_json);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_serve.json");
    println!("# wrote {out_path}");

    // --- Latency regression vs. the committed baseline budgets. ---------
    let mut failed = false;
    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| Json::parse(&t))
        {
            Ok(baseline) => {
                let mut gated = 0;
                for (kind, p50) in &p50_by_kind {
                    let Some(budget) = baseline
                        .get_path(&["serve", "kinds", kind, "p50_ms"])
                        .and_then(Json::as_f64)
                    else {
                        continue;
                    };
                    gated += 1;
                    let limit = budget * (1.0 + P50_REGRESSION_MARGIN);
                    if *p50 > limit {
                        eprintln!(
                            "p50 REGRESSION [{kind}]: {p50:.3} ms > {limit:.3} ms \
                             (baseline budget {budget:.3} ms + {:.0}%)",
                            100.0 * P50_REGRESSION_MARGIN
                        );
                        failed = true;
                    } else {
                        println!(
                            "# p50 [{kind}]: {p50:.3} ms within budget {budget:.3} ms (+{:.0}%)",
                            100.0 * P50_REGRESSION_MARGIN
                        );
                    }
                }
                if gated == 0 {
                    println!("# baseline {path} has no serve.kinds.*.p50_ms — latency not gated");
                }
            }
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if check {
        // Byte-identity already asserted per request above. The cache gate:
        // a repeated-request workload must actually hit.
        if stats.hit_rate() <= 0.0 {
            eprintln!(
                "--check FAILED: cache hit rate is zero over {total} requests to {} distinct \
                 blocks",
                mix.len()
            );
            std::process::exit(1);
        }
        if failed {
            eprintln!("--check FAILED: p50 latency regressed vs. {:?}", baseline_path);
            std::process::exit(1);
        }
        println!(
            "# --check: byte-identity held for all {total} responses, hit rate {:.1}% > 0",
            100.0 * stats.hit_rate()
        );
    }
}

/// Stable latency-bucket label of a fetch kind.
fn kind_label(fetch: &Fetch) -> &'static str {
    match fetch {
        Fetch::Full => "full",
        Fetch::Region(_) => "roi",
        Fetch::Level(_) | Fetch::Progressive(_) => "progressive",
        Fetch::RawSection(_) => "raw",
    }
}

/// `--flag value` lookup in the leftover args.
fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1)).cloned()
}

/// Quantile of an ascending-sorted slice (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Log-bucketed latency histogram as `[upper_bound_ms, count]` pairs
/// (geometric bounds from 0.05 ms, factor 2), trailing empty buckets
/// dropped.
fn histogram(sorted: &[f64]) -> Json {
    let mut pairs: Vec<Json> = Vec::new();
    let mut bound = 0.05;
    let mut idx = 0;
    while idx < sorted.len() {
        let count = sorted[idx..].iter().take_while(|&&ms| ms <= bound).count();
        pairs.push(arr([bound.into(), count.into()]));
        idx += count;
        bound *= 2.0;
        if pairs.len() > 40 {
            // Everything else lands in one unbounded tail bucket.
            pairs.push(arr([f64::MAX.into(), (sorted.len() - idx).into()]));
            break;
        }
    }
    arr(pairs)
}
