//! Throughput harness for the stz-serve archive server.
//!
//! Hosts a synthetic container on an ephemeral loopback port, then drives
//! it with `--threads` concurrent client connections, each issuing a
//! FULL / ROI / PROGRESSIVE request mix. Reports requests/sec, per-kind
//! p50/p99 latency with log-bucketed histograms, and the server's cache
//! hit rate, written as nested JSON to `BENCH_serve.json`:
//!
//! ```text
//! cargo run --release -p stz-bench --bin serve_throughput \
//!     [-- --scale 8 --threads 8 --requests 48 --out BENCH_serve.json --check]
//! ```
//!
//! Every response is verified byte-identical to a local
//! `ContainerReader` decode of the same request. With `--check`, the
//! harness additionally exits non-zero unless the repeated-request
//! workload produced a nonzero cache hit rate — the regression gate CI
//! runs (latency itself is recorded but never gated; CI runners are
//! noisy).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use stz_bench::cli;
use stz_bench::json::{arr, obj, Json};
use stz_core::{StzCompressor, StzConfig};
use stz_field::{Dims, Field, Region};
use stz_serve::{Client, EntrySel, FetchReq, RequestKind, ServeOptions, Server};
use stz_stream::{pack_to_file, ContainerReader};

/// Entries packed into the hosted container.
const ENTRIES: usize = 2;

fn main() {
    let opts = cli::from_env();
    let check = opts.rest.iter().any(|a| a == "--check");
    let out_path = flag_value(&opts.rest, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let requests: usize =
        flag_value(&opts.rest, "--requests").and_then(|v| v.parse().ok()).unwrap_or(48);
    let clients = opts.threads.max(1);

    // --- Host a synthetic container. -----------------------------------
    let n = (256 / opts.scale).max(16);
    let dims = Dims::d3(n, n, n);
    let dir = std::env::temp_dir().join(format!("stz_serve_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let container = dir.join("bench.stzc");
    let fields: Vec<Field<f32>> =
        (0..ENTRIES).map(|i| stz_data::synth::miranda_like(dims, opts.seed + i as u64)).collect();
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let archives: Vec<_> = fields
        .iter()
        .map(|f| compressor.compress(f).expect("compression of a synthetic field"))
        .collect();
    let named: Vec<(String, &stz_core::StzArchive<f32>)> =
        archives.iter().enumerate().map(|(i, a)| (format!("t{i}"), a)).collect();
    let name_refs: Vec<(&str, &stz_core::StzArchive<f32>)> =
        named.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    pack_to_file(&container, &name_refs).expect("pack bench container");

    // --- The request mix, with locally decoded expected bytes. ---------
    let roi = Region::d3(n / 4..n / 2, n / 4..n / 2, n / 4..n / 2);
    let reader = ContainerReader::open_path(&container).expect("reopen bench container");
    let mut mix: Vec<(FetchReq, Vec<u8>)> = Vec::new();
    for (i, _) in fields.iter().enumerate() {
        let entry = reader.entry::<f32>(i).expect("typed entry");
        for kind in [RequestKind::Full, RequestKind::roi(&roi), RequestKind::Level(1)] {
            let field = match kind {
                RequestKind::Full => entry.decompress().expect("local full decode"),
                RequestKind::Roi(_) => entry.decompress_region(&roi).expect("local roi decode"),
                RequestKind::Level(k) => entry.decompress_level(k).expect("local preview"),
                RequestKind::Raw => unreachable!(),
            };
            let mut expect = Vec::with_capacity(field.nbytes());
            for &v in field.as_slice() {
                expect.extend_from_slice(&v.to_le_bytes());
            }
            let req =
                FetchReq { container: "bench".into(), entry: EntrySel::Index(i as u32), kind };
            mix.push((req, expect));
        }
    }
    let mix = Arc::new(mix);

    let server = Server::bind(ServeOptions {
        root: dir.clone(),
        addr: "127.0.0.1:0".into(),
        cache_bytes: 64 << 20,
        ..ServeOptions::default()
    })
    .expect("bind loopback server");
    let addr = server.local_addr().expect("bound address");
    let handle = server.spawn().expect("spawn accept loop");

    println!(
        "# serve_throughput: {dims} f32 x {ENTRIES} entries, {clients} client(s) x {requests} \
         requests, mix FULL/ROI/PROGRESSIVE"
    );

    // --- Drive it. ------------------------------------------------------
    let wall = Instant::now();
    let per_client: Vec<Vec<(u8, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let mix = Arc::clone(&mix);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connect");
                    let mut lat = Vec::with_capacity(requests);
                    for r in 0..requests {
                        // Stagger start positions so clients collide on the
                        // cache instead of marching in lockstep.
                        let (req, expect) = &mix[(r + c) % mix.len()];
                        let t = Instant::now();
                        let fetched = client.fetch(req).expect("fetch");
                        lat.push((req.kind.tag(), t.elapsed().as_secs_f64() * 1e3));
                        assert_eq!(
                            &fetched.data, expect,
                            "client {c} request {r}: response differs from local decode"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut client = Client::connect(addr).expect("stats connection");
    let stats = client.stats().expect("stats");
    drop(client);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);

    // --- Aggregate. ------------------------------------------------------
    let total = clients * requests;
    let rps = total as f64 / wall_s;
    let mut by_kind: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    for (tag, ms) in per_client.into_iter().flatten() {
        let kind = match tag {
            0 => "full",
            1 => "progressive",
            2 => "roi",
            _ => "raw",
        };
        by_kind.entry(kind).or_default().push(ms);
    }

    println!("{:<14} {:>8} {:>10} {:>10} {:>10}", "kind", "count", "p50_ms", "p99_ms", "max_ms");
    let mut kinds_json: Vec<(&'static str, Json)> = Vec::new();
    for (kind, lat) in &mut by_kind {
        lat.sort_by(|a, b| a.total_cmp(b));
        let (p50, p99) = (quantile(lat, 0.50), quantile(lat, 0.99));
        println!(
            "{:<14} {:>8} {:>10.3} {:>10.3} {:>10.3}",
            kind,
            lat.len(),
            p50,
            p99,
            lat.last().copied().unwrap_or(0.0)
        );
        kinds_json.push((
            kind,
            obj([
                ("count", lat.len().into()),
                ("p50_ms", p50.into()),
                ("p99_ms", p99.into()),
                ("max_ms", lat.last().copied().unwrap_or(0.0).into()),
                ("histogram_ms", histogram(lat)),
            ]),
        ));
    }
    println!(
        "# {total} requests in {wall_s:.3}s = {rps:.0} req/s; cache hit rate {:.1}% \
         ({} hits / {} misses / {} evictions)",
        100.0 * stats.hit_rate(),
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions
    );

    let doc = obj([
        ("schema", "stz-bench/serve/v1".into()),
        ("scale", opts.scale.into()),
        ("seed", (opts.seed as usize).into()),
        ("dims", vec![n, n, n].into()),
        ("entries", ENTRIES.into()),
        ("clients", clients.into()),
        ("requests_per_client", requests.into()),
        ("requests", total.into()),
        ("wall_s", wall_s.into()),
        ("requests_per_s", rps.into()),
        (
            "cache",
            obj([
                ("hits", stats.cache_hits.into()),
                ("misses", stats.cache_misses.into()),
                ("evictions", stats.cache_evictions.into()),
                ("entries", stats.cache_entries.into()),
                ("bytes", stats.cache_bytes.into()),
                ("capacity", stats.cache_capacity.into()),
                ("hit_rate", stats.hit_rate().into()),
            ]),
        ),
        ("kinds", obj(kinds_json)),
        ("byte_identity", true.into()),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write BENCH_serve.json");
    println!("# wrote {out_path}");

    if check {
        // Byte-identity already asserted per request above. The gate here
        // is the cache: a repeated-request workload must actually hit.
        if stats.hit_rate() <= 0.0 {
            eprintln!(
                "--check FAILED: cache hit rate is zero over {total} requests to {} distinct \
                 blocks",
                mix.len()
            );
            std::process::exit(1);
        }
        println!(
            "# --check: byte-identity held for all {total} responses, hit rate {:.1}% > 0",
            100.0 * stats.hit_rate()
        );
    }
}

/// `--flag value` lookup in the leftover args.
fn flag_value(rest: &[String], flag: &str) -> Option<String> {
    rest.iter().position(|a| a == flag).and_then(|i| rest.get(i + 1)).cloned()
}

/// Quantile of an ascending-sorted slice (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Log-bucketed latency histogram as `[upper_bound_ms, count]` pairs
/// (geometric bounds from 0.05 ms, factor 2), trailing empty buckets
/// dropped.
fn histogram(sorted: &[f64]) -> Json {
    let mut pairs: Vec<Json> = Vec::new();
    let mut bound = 0.05;
    let mut idx = 0;
    while idx < sorted.len() {
        let count = sorted[idx..].iter().take_while(|&&ms| ms <= bound).count();
        pairs.push(arr([bound.into(), count.into()]));
        idx += count;
        bound *= 2.0;
        if pairs.len() > 40 {
            // Everything else lands in one unbounded tail bucket.
            pairs.push(arr([f64::MAX.into(), (sorted.len() - idx).into()]));
            break;
        }
    }
    Json::Arr(pairs)
}
