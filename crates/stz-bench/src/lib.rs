//! Benchmark harness reproducing every table and figure of the STZ paper.
//!
//! The library provides what every harness binary needs:
//!
//! * [`Codec`] — a uniform handle over the five evaluated compressors
//!   (STZ, SZ3, SPERR, ZFP, MGARD-X analogue), with serial and
//!   OpenMP-style parallel entry points;
//! * [`slab`] — slab-decomposition parallel wrappers for the baselines
//!   (mirroring how the reference SZ3/SPERR parallelize with OpenMP —
//!   including the compression-ratio drop the paper flags for SZ3's OMP
//!   mode in Table 3);
//! * [`cli`] — a tiny flag parser shared by the `fig*`/`table*` binaries;
//! * [`timing`] — wall-clock measurement helpers.
//!
//! Each binary regenerates one table or figure (see DESIGN.md §4):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `table1_features` | Table 1 feature matrix |
//! | `fig1_downsample` | Fig. 1 downsample SSIM |
//! | `fig3_visual` | Fig. 3 Nyx visual quality (SSIM/PSNR @ matched CR) |
//! | `fig5_ablation` | Fig. 5 rate-distortion ablation |
//! | `fig10_roi` | Fig. 10 ROI extraction |
//! | `fig11_rate_distortion` | Fig. 11 rate-distortion, 4 datasets × 5 codecs |
//! | `fig12_visual` | Fig. 12 WarpX / Mag.Rec. visual quality |
//! | `table3_speed` | Table 3 serial + OMP timings |
//! | `fig13_progressive` | Fig. 13 progressive decompression |
//! | `table4_random_access` | Table 4 random-access breakdown |

pub mod calibrate;
pub mod cli;
pub mod json;
pub mod slab;
pub mod timing;

use stz_codec::Result;
use stz_core::{StzArchive, StzCompressor, StzConfig};
use stz_field::{Field, Scalar};

/// The number of threads the paper's OMP evaluation uses (§4.3).
pub const OMP_THREADS: usize = 8;

/// The five compressors of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    Stz,
    Sz3,
    Sperr,
    Zfp,
    MgardX,
}

impl Codec {
    /// All codecs in the paper's column order (Table 3).
    pub fn all() -> [Codec; 5] {
        [Codec::Stz, Codec::Sz3, Codec::Sperr, Codec::Zfp, Codec::MgardX]
    }

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Stz => "Ours",
            Codec::Sz3 => "SZ3",
            Codec::Sperr => "SPERR",
            Codec::Zfp => "ZFP",
            Codec::MgardX => "MGARD-X",
        }
    }

    /// Whether the codec supports resolution/precision-progressive
    /// decompression (Table 1).
    pub fn supports_progressive(&self) -> bool {
        matches!(self, Codec::Stz | Codec::Sperr | Codec::MgardX)
    }

    /// Whether the codec supports random-access decompression (Table 1).
    pub fn supports_random_access(&self) -> bool {
        matches!(self, Codec::Stz | Codec::Zfp)
    }

    /// Whether the reference implementation accelerates decompression with
    /// OpenMP (Table 3: ZFP and MGARD-X do not).
    pub fn supports_parallel_decompression(&self) -> bool {
        matches!(self, Codec::Stz | Codec::Sz3 | Codec::Sperr)
    }

    /// Serial compression at absolute error bound `eb`.
    pub fn compress<T: Scalar>(&self, field: &Field<T>, eb: f64) -> Vec<u8> {
        match self {
            Codec::Stz => StzCompressor::new(StzConfig::three_level(eb))
                .compress(field)
                .expect("STZ compression cannot fail on a valid field")
                .into_bytes(),
            Codec::Sz3 => stz_sz3::compress(field, &stz_sz3::Sz3Config::absolute(eb)),
            Codec::Sperr => stz_sperr::compress(field, &stz_sperr::SperrConfig::new(eb)),
            Codec::Zfp => stz_zfp::compress(field, &stz_zfp::ZfpConfig::new(eb)),
            Codec::MgardX => stz_mgard::compress(field, &stz_mgard::MgardConfig::new(eb)),
        }
    }

    /// Serial decompression.
    pub fn decompress<T: Scalar>(&self, bytes: &[u8]) -> Result<Field<T>> {
        match self {
            Codec::Stz => StzArchive::<T>::from_bytes(bytes.to_vec())?.decompress(),
            Codec::Sz3 => stz_sz3::decompress(bytes),
            Codec::Sperr => stz_sperr::decompress(bytes),
            Codec::Zfp => stz_zfp::decompress(bytes),
            Codec::MgardX => stz_mgard::decompress(bytes),
        }
    }

    /// OpenMP-style parallel compression with `threads` workers.
    ///
    /// STZ parallelizes natively over sub-blocks/points (bit-identical to
    /// serial). The baselines parallelize by slab decomposition, as their
    /// reference OMP implementations do — which is exactly why SZ3's OMP
    /// mode loses compression ratio (Table 3's asterisks).
    pub fn compress_parallel<T: Scalar>(
        &self,
        field: &Field<T>,
        eb: f64,
        threads: usize,
    ) -> Vec<u8> {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        match self {
            Codec::Stz => pool.install(|| {
                StzCompressor::new(StzConfig::three_level(eb))
                    .compress_parallel(field)
                    .expect("STZ compression cannot fail on a valid field")
                    .into_bytes()
            }),
            Codec::Sz3 => pool.install(|| {
                slab::compress_slabs(field, threads, |slab| {
                    stz_sz3::compress(slab, &stz_sz3::Sz3Config::absolute(eb))
                })
            }),
            Codec::Sperr => pool.install(|| {
                slab::compress_slabs(field, threads, |slab| {
                    stz_sperr::compress(slab, &stz_sperr::SperrConfig::new(eb))
                })
            }),
            Codec::Zfp => pool.install(|| {
                slab::compress_slabs(field, threads, |slab| {
                    stz_zfp::compress(slab, &stz_zfp::ZfpConfig::new(eb))
                })
            }),
            Codec::MgardX => pool.install(|| {
                slab::compress_slabs(field, threads, |slab| {
                    stz_mgard::compress(slab, &stz_mgard::MgardConfig::new(eb))
                })
            }),
        }
    }

    /// Parallel decompression where supported (falls back to serial for
    /// ZFP and MGARD-X, as in the paper).
    pub fn decompress_parallel<T: Scalar>(&self, bytes: &[u8], threads: usize) -> Result<Field<T>> {
        if !self.supports_parallel_decompression() {
            // The slab container may still be present (parallel compression)
            // — decode it serially.
            return match self {
                Codec::Zfp => slab::decompress_slabs(bytes, false, |b| stz_zfp::decompress(b))
                    .or_else(|_| stz_zfp::decompress(bytes)),
                Codec::MgardX => slab::decompress_slabs(bytes, false, |b| stz_mgard::decompress(b))
                    .or_else(|_| stz_mgard::decompress(bytes)),
                _ => unreachable!(),
            };
        }
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
        match self {
            Codec::Stz => {
                pool.install(|| StzArchive::<T>::from_bytes(bytes.to_vec())?.decompress_parallel())
            }
            Codec::Sz3 => pool.install(|| {
                slab::decompress_slabs(bytes, true, |b| stz_sz3::decompress(b))
                    .or_else(|_| stz_sz3::decompress(bytes))
            }),
            Codec::Sperr => pool.install(|| {
                slab::decompress_slabs(bytes, true, |b| stz_sperr::decompress(b))
                    .or_else(|_| stz_sperr::decompress(bytes))
            }),
            _ => unreachable!(),
        }
    }
}

/// Compress a [`stz_data::DatasetField`] (dispatching on element type) and
/// return `(bytes, psnr, ssim, cr)` against the original.
pub fn run_quality(
    codec: Codec,
    field: &stz_data::DatasetField,
    eb_rel: f64,
) -> (usize, f64, f64, f64) {
    match field {
        stz_data::DatasetField::F32(f) => {
            let (lo, hi) = f.value_range();
            let eb = eb_rel * (hi - lo);
            let bytes = codec.compress(f, eb);
            let recon: Field<f32> = codec.decompress(&bytes).expect("roundtrip");
            let q = stz_data::metrics::summarize(f, &recon, bytes.len());
            (bytes.len(), q.psnr, q.ssim, q.compression_ratio)
        }
        stz_data::DatasetField::F64(f) => {
            let (lo, hi) = f.value_range();
            let eb = eb_rel * (hi - lo);
            let bytes = codec.compress(f, eb);
            let recon: Field<f64> = codec.decompress(&bytes).expect("roundtrip");
            let q = stz_data::metrics::summarize(f, &recon, bytes.len());
            (bytes.len(), q.psnr, q.ssim, q.compression_ratio)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn field() -> Field<f32> {
        stz_data::synth::miranda_like(Dims::d3(24, 24, 24), 3)
    }

    #[test]
    fn every_codec_roundtrips() {
        let f = field();
        let (lo, hi) = f.value_range();
        let eb = 1e-3 * (hi - lo);
        for codec in Codec::all() {
            let bytes = codec.compress(&f, eb);
            let back: Field<f32> = codec.decompress(&bytes).unwrap();
            let err = stz_data::metrics::max_abs_error(&f, &back);
            assert!(err <= eb * (1.0 + 1e-6), "{}: err {err} vs eb {eb}", codec.name());
            assert!(bytes.len() < f.nbytes(), "{} did not compress", codec.name());
        }
    }

    #[test]
    fn parallel_roundtrips_and_bounds() {
        let f = field();
        let (lo, hi) = f.value_range();
        let eb = 1e-3 * (hi - lo);
        for codec in Codec::all() {
            let bytes = codec.compress_parallel(&f, eb, 4);
            let back: Field<f32> = codec.decompress_parallel(&bytes, 4).unwrap();
            let err = stz_data::metrics::max_abs_error(&f, &back);
            assert!(err <= eb * (1.0 + 1e-6), "{}: err {err}", codec.name());
        }
    }

    #[test]
    fn stz_parallel_bit_identical_serial_not_required_for_baselines() {
        let f = field();
        let eb = 1e-3;
        let a = Codec::Stz.compress(&f, eb);
        let b = Codec::Stz.compress_parallel(&f, eb, 4);
        assert_eq!(a, b, "STZ parallel must be bit-identical");
        // SZ3 slab mode generally produces different (slightly larger)
        // output — the paper's CR-drop asterisk.
        let s_ser = Codec::Sz3.compress(&f, eb);
        let s_par = Codec::Sz3.compress_parallel(&f, eb, 4);
        assert!(s_par.len() >= s_ser.len(), "slab SZ3 should not shrink");
    }

    #[test]
    fn feature_matrix_matches_table1() {
        assert!(Codec::Stz.supports_progressive() && Codec::Stz.supports_random_access());
        assert!(!Codec::Sz3.supports_progressive() && !Codec::Sz3.supports_random_access());
        assert!(Codec::Sperr.supports_progressive() && !Codec::Sperr.supports_random_access());
        assert!(Codec::MgardX.supports_progressive() && !Codec::MgardX.supports_random_access());
        assert!(!Codec::Zfp.supports_progressive() && Codec::Zfp.supports_random_access());
    }
}
