//! Minimal flag parsing shared by the harness binaries.
//!
//! Every binary accepts:
//!
//! * `--scale N` — divide each paper axis by `N` (default 8; `1` runs the
//!   full Table-2 sizes);
//! * `--seed S` — workload seed (default 2025);
//! * `--reps R` — timing repetitions (default 1 for long runs);
//! * `--threads T` — parallel worker count (default 8, the paper's OMP
//!   setting).

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    pub scale: usize,
    pub seed: u64,
    pub reps: usize,
    pub threads: usize,
    /// Leftover (binary-specific) flags.
    pub rest: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 8, seed: 2025, reps: 1, threads: crate::OMP_THREADS, rest: Vec::new() }
    }
}

/// Parse `std::env::args`-style arguments (first element = program name).
pub fn parse(args: impl IntoIterator<Item = String>) -> Options {
    let mut opts = Options::default();
    let mut it = args.into_iter().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{name} requires a positive integer"))
        };
        match arg.as_str() {
            "--scale" => opts.scale = grab("--scale").max(1),
            "--seed" => opts.seed = grab("--seed") as u64,
            "--reps" => opts.reps = grab("--reps").max(1),
            "--threads" => opts.threads = grab("--threads").max(1),
            other => opts.rest.push(other.to_string()),
        }
    }
    opts
}

/// Parse from the process environment.
pub fn from_env() -> Options {
    parse(std::env::args())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        std::iter::once("prog".to_string()).chain(s.iter().map(|s| s.to_string())).collect()
    }

    #[test]
    fn defaults() {
        let o = parse(args(&[]));
        assert_eq!(o.scale, 8);
        assert_eq!(o.threads, 8);
        assert_eq!(o.reps, 1);
    }

    #[test]
    fn overrides_and_rest() {
        let o = parse(args(&["--scale", "4", "--seed", "7", "--stats", "--threads", "2"]));
        assert_eq!(o.scale, 4);
        assert_eq!(o.seed, 7);
        assert_eq!(o.threads, 2);
        assert_eq!(o.rest, vec!["--stats".to_string()]);
    }

    #[test]
    fn scale_clamps_to_one() {
        let o = parse(args(&["--scale", "0"]));
        assert_eq!(o.scale, 1);
    }
}
