//! Error-bound calibration: find the bound that hits a target compression
//! ratio, for the paper's matched-CR visual comparisons (Figs. 3 and 12).

use stz_field::{Field, Scalar};

/// Binary-search the absolute error bound at which `compress` produces a
/// compression ratio within `rel_tol` of `target_cr`. Returns
/// `(eb, bytes)`. CR is monotone non-decreasing in `eb` for every codec in
/// this workspace, which is what the search relies on.
pub fn eb_for_target_cr<T: Scalar>(
    field: &Field<T>,
    target_cr: f64,
    rel_tol: f64,
    compress: impl Fn(&Field<T>, f64) -> Vec<u8>,
) -> (f64, Vec<u8>) {
    let (lo_v, hi_v) = field.value_range();
    let range = (hi_v - lo_v).max(f64::MIN_POSITIVE);
    let raw = field.nbytes() as f64;

    let mut eb_lo = range * 1e-9;
    let mut eb_hi = range * 1.0;
    let mut best = (eb_lo, compress(field, eb_lo));

    // Ensure the bracket actually spans the target.
    let cr_of = |bytes: &Vec<u8>| raw / bytes.len() as f64;
    for _ in 0..40 {
        let eb = (eb_lo.ln() * 0.5 + eb_hi.ln() * 0.5).exp();
        let bytes = compress(field, eb);
        let cr = cr_of(&bytes);
        let best_cr = cr_of(&best.1);
        if (cr / target_cr - 1.0).abs() < (best_cr / target_cr - 1.0).abs() {
            best = (eb, bytes);
        }
        if (cr / target_cr - 1.0).abs() <= rel_tol {
            return best;
        }
        if cr < target_cr {
            eb_lo = eb;
        } else {
            eb_hi = eb;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    #[test]
    fn hits_target_within_tolerance() {
        let f = stz_data::synth::miranda_like(Dims::d3(24, 24, 24), 7);
        let target = 30.0;
        let (eb, bytes) = eb_for_target_cr(&f, target, 0.10, |fld, e| {
            stz_sz3::compress(fld, &stz_sz3::Sz3Config::absolute(e))
        });
        let cr = f.nbytes() as f64 / bytes.len() as f64;
        assert!(eb > 0.0);
        assert!((cr / target - 1.0).abs() < 0.25, "cr {cr} target {target}");
    }
}
