//! Criterion micro-benchmarks of the streaming decompression modes: the
//! progressive and random-access costs behind Fig. 13 and Table 4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use stz_core::{StzArchive, StzCompressor, StzConfig};
use stz_field::{Dims, Field, Region};

fn archive() -> (Field<f32>, StzArchive<f32>) {
    let f = stz_data::synth::miranda_like(Dims::d3(64, 64, 64), 42);
    let (lo, hi) = f.value_range();
    let eb = 1e-3 * (hi - lo);
    let a = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
    (f, a)
}

fn bench_progressive(c: &mut Criterion) {
    let (f, a) = archive();
    let mut g = c.benchmark_group("progressive_decompress");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(f.nbytes() as u64));
    for level in 1..=3u8 {
        g.bench_function(format!("level_{level}"), |b| {
            b.iter(|| black_box(a.decompress_level(black_box(level)).unwrap()));
        });
    }
    g.finish();
}

fn bench_random_access(c: &mut Criterion) {
    let (_, a) = archive();
    let dims = Dims::d3(64, 64, 64);
    let cases = [
        ("full", Region::full(dims)),
        ("box_16cubed", Region::d3(24..40, 24..40, 24..40)),
        ("slice_z32", Region::slice_z(dims, 32)),
    ];
    let mut g = c.benchmark_group("random_access");
    g.sample_size(20);
    for (name, region) in cases {
        g.bench_function(name, |b| {
            b.iter(|| black_box(a.decompress_region(black_box(&region)).unwrap()));
        });
    }
    g.finish();
}

fn bench_parallel_decompress(c: &mut Criterion) {
    let (f, a) = archive();
    let mut g = c.benchmark_group("full_decompress");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(f.nbytes() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| black_box(a.decompress().unwrap()));
    });
    g.bench_function("parallel", |b| {
        b.iter(|| black_box(a.decompress_parallel().unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_progressive, bench_random_access, bench_parallel_decompress);
criterion_main!(benches);
