//! Criterion micro-benchmarks: compression / decompression throughput of
//! all five codecs on a fixed 64³ turbulence workload (the per-codec
//! columns behind Table 3's wall-clock numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use stz_bench::Codec;
use stz_field::{Dims, Field};

fn workload() -> (Field<f32>, f64) {
    let f = stz_data::synth::miranda_like(Dims::d3(64, 64, 64), 42);
    let (lo, hi) = f.value_range();
    let eb = 1e-3 * (hi - lo);
    (f, eb)
}

fn bench_compress(c: &mut Criterion) {
    let (field, eb) = workload();
    let mut g = c.benchmark_group("compress_64cubed");
    g.throughput(Throughput::Bytes(field.nbytes() as u64));
    g.sample_size(10);
    for codec in Codec::all() {
        g.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| black_box(codec.compress(black_box(&field), eb)));
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let (field, eb) = workload();
    let mut g = c.benchmark_group("decompress_64cubed");
    g.throughput(Throughput::Bytes(field.nbytes() as u64));
    g.sample_size(10);
    for codec in Codec::all() {
        let bytes = codec.compress(&field, eb);
        g.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| black_box(codec.decompress::<f32>(black_box(&bytes)).unwrap()));
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let (field, eb) = workload();
    let mut g = c.benchmark_group("parallel_compress_64cubed");
    g.throughput(Throughput::Bytes(field.nbytes() as u64));
    g.sample_size(10);
    for codec in [Codec::Stz, Codec::Sz3] {
        g.bench_with_input(BenchmarkId::from_parameter(codec.name()), &codec, |b, &codec| {
            b.iter(|| black_box(codec.compress_parallel(black_box(&field), eb, 8)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress, bench_parallel);
criterion_main!(benches);
