//! Criterion micro-benchmarks of the computational kernels: interpolation
//! prediction (slow vs fast path), quantization, Huffman coding, the CDF 9/7
//! wavelet, the ZFP block transform, and lattice gather/scatter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use stz_codec::{huffman, LinearQuantizer};
use stz_core::kernels::{predict_point, StencilOffsets};
use stz_field::{Dims, Field, SubLattice};
use stz_sz3::InterpKind;

fn bench_prediction(c: &mut Criterion) {
    let dims = Dims::d3(64, 64, 64);
    let buf: Vec<f64> = (0..dims.len()).map(|i| ((i as f64) * 0.001).sin()).collect();
    let active = [0usize, 1, 2];
    let mut g = c.benchmark_group("predict_tricubic");
    g.throughput(Throughput::Elements(28 * 28 * 28));

    g.bench_function("general_path", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for z in (5..60).step_by(2) {
                for y in (5..60).step_by(2) {
                    for x in (5..60).step_by(2) {
                        acc += predict_point(
                            black_box(&buf),
                            dims,
                            [z, y, x],
                            &active,
                            1,
                            InterpKind::Cubic,
                        );
                    }
                }
            }
            black_box(acc)
        });
    });

    let st = StencilOffsets::new(dims, &active, InterpKind::Cubic);
    g.bench_function("interior_fast_path", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for z in (5..60).step_by(2) {
                for y in (5..60).step_by(2) {
                    let row = (z * 64 + y) * 64;
                    for x in (5..60).step_by(2) {
                        acc += st.predict_interior(black_box(&buf), row + x);
                    }
                }
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_quantizer(c: &mut Criterion) {
    let quant = LinearQuantizer::new(1e-3, 1 << 15);
    let values: Vec<(f64, f64)> = (0..10_000)
        .map(|i| {
            let x = i as f64 * 0.001;
            (x.sin(), x.sin() + (i % 7) as f64 * 1e-4)
        })
        .collect();
    let mut g = c.benchmark_group("quantizer");
    g.throughput(Throughput::Elements(values.len() as u64));
    g.bench_function("quantize", |b| {
        b.iter(|| {
            let mut n = 0u32;
            for &(actual, pred) in &values {
                if let stz_codec::QuantOutcome::Code { symbol, .. } =
                    quant.quantize(black_box(actual), black_box(pred))
                {
                    n = n.wrapping_add(symbol);
                }
            }
            black_box(n)
        });
    });
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    // Realistic quantization-code distribution: sharply peaked at 1.
    let symbols: Vec<u32> = (0..262_144u64)
        .map(|i| {
            let h = stz_data::synth::noise::hash64(i);
            match h % 100 {
                0..=79 => 1,
                80..=94 => (h % 8) as u32 + 2,
                _ => (h % 64) as u32 + 2,
            }
        })
        .collect();
    let block = huffman::encode_block(&symbols);
    let mut g = c.benchmark_group("huffman_256k_symbols");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.sample_size(20);
    g.bench_function("encode", |b| {
        b.iter(|| black_box(huffman::encode_block(black_box(&symbols))));
    });
    g.bench_function("decode", |b| {
        b.iter(|| black_box(huffman::decode_block(black_box(&block)).unwrap()));
    });
    g.finish();
}

fn bench_wavelet(c: &mut Criterion) {
    let dims = Dims::d3(64, 64, 64);
    let data: Vec<f64> = (0..dims.len()).map(|i| ((i as f64) * 0.002).cos()).collect();
    let mut g = c.benchmark_group("cdf97_64cubed");
    g.throughput(Throughput::Elements(dims.len() as u64));
    g.sample_size(20);
    g.bench_function("forward_3level", |b| {
        b.iter(|| {
            let mut x = data.clone();
            stz_sperr::wavelet::fwd_nd(&mut x, dims, 3);
            black_box(x)
        });
    });
    g.finish();
}

fn bench_zfp_transform(c: &mut Criterion) {
    let blocks: Vec<[i64; 64]> = (0..1000)
        .map(|k| {
            let mut b = [0i64; 64];
            for (i, v) in b.iter_mut().enumerate() {
                *v = ((k * 64 + i) as i64).wrapping_mul(2654435761) % 1_000_000;
            }
            b
        })
        .collect();
    let mut g = c.benchmark_group("zfp_transform");
    g.throughput(Throughput::Elements(64_000));
    g.bench_function("fwd_xform_3d", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for blk in &blocks {
                let mut x = *blk;
                stz_zfp::transform::fwd_xform(&mut x, 3);
                acc = acc.wrapping_add(x[0]);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let field = Field::from_fn(Dims::d3(64, 64, 64), |z, y, x| (z + y + x) as f32);
    let lat = SubLattice::new(field.dims(), [1, 0, 1], 2).unwrap();
    let mut g = c.benchmark_group("sublattice");
    g.throughput(Throughput::Elements(lat.len() as u64));
    g.bench_function("gather_stride2", |b| {
        b.iter(|| black_box(lat.gather(black_box(&field))));
    });
    let block = lat.gather(&field);
    g.bench_function("scatter_stride2", |b| {
        let mut out = Field::zeros(field.dims());
        b.iter(|| {
            lat.scatter(black_box(&block), &mut out);
            black_box(out.get(1, 0, 1))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_prediction,
    bench_quantizer,
    bench_huffman,
    bench_wavelet,
    bench_zfp_transform,
    bench_partition
);
criterion_main!(benches);
