//! aarch64 NEON lane (2×f64 / 4×f32, baseline on aarch64).
//!
//! Byte-identity notes: NEON packed `fadd/fsub/fmul/fdiv/fcvt` round
//! exactly like the scalar instructions, `vrndaq_f64` (FRINTA, round to
//! nearest with ties away from zero) *is* `f64::round`, and no FMA is
//! emitted (`vfmaq` is never used). Interleaved `vld2`/`vst2` implement
//! the stride-2 gather/scatter; the scatter rewrites odd elements with
//! their current values, which the exclusive `&mut` borrow makes safe.
//! Like the x86 lanes, full-width stride-2 loads may touch one element
//! past the last even index, so [`vec_points`] bounds the vector portion
//! and the scalar reference finishes the run.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::kernels::{vec_points, Stencil};
use crate::scalar;
use std::arch::aarch64::*;

#[inline]
unsafe fn not_u64(x: uint64x2_t) -> uint64x2_t {
    veorq_u64(x, vdupq_n_u64(!0))
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn predict_run(buf: &[f64], base: usize, st: &Stencil, out: &mut [f64]) {
    const W: usize = 2;
    let (_, hi) = st.offset_range();
    let v = vec_points(base, hi, buf.len(), out.len(), W);
    let p = buf.as_ptr();
    let o = out.as_mut_ptr();
    if st.cubic {
        let wi = vdupq_n_f64(st.wi);
        let wo = vdupq_n_f64(st.wo);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut si = vdupq_n_f64(0.0);
            let mut so = vdupq_n_f64(0.0);
            for bits in 0..st.corners {
                si = vaddq_f64(si, vld2q_f64(c.offset(st.inner[bits])).0);
                so = vaddq_f64(so, vld2q_f64(c.offset(st.outer[bits])).0);
            }
            let r = vaddq_f64(vmulq_f64(wi, si), vmulq_f64(wo, so));
            vst1q_f64(o.add(i), r);
            i += W;
        }
    } else {
        let div = vdupq_n_f64(st.corners as f64);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut s = vdupq_n_f64(0.0);
            for bits in 0..st.corners {
                s = vaddq_f64(s, vld2q_f64(c.offset(st.inner[bits])).0);
            }
            vst1q_f64(o.add(i), vdivq_f64(s, div));
            i += W;
        }
    }
    scalar::predict_run(buf, base + 2 * v, st, &mut out[v..]);
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn predict_recon_run(
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    const W: usize = 2;
    let (_, hi) = st.offset_range();
    let v = vec_points(base, hi, buf.len(), out.len(), W);
    let p = buf.as_ptr();
    let cp = codes.as_ptr();
    let o = out.as_mut_ptr();
    let v2eb = vdupq_n_f64(two_eb);
    if st.cubic {
        let wi = vdupq_n_f64(st.wi);
        let wo = vdupq_n_f64(st.wo);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut si = vdupq_n_f64(0.0);
            let mut so = vdupq_n_f64(0.0);
            for bits in 0..st.corners {
                si = vaddq_f64(si, vld2q_f64(c.offset(st.inner[bits])).0);
                so = vaddq_f64(so, vld2q_f64(c.offset(st.outer[bits])).0);
            }
            let pred = vaddq_f64(vmulq_f64(wi, si), vmulq_f64(wo, so));
            let mut r = vaddq_f64(pred, vmulq_f64(v2eb, vld1q_f64(cp.add(i))));
            if round32 {
                r = vcvt_f64_f32(vcvt_f32_f64(r));
            }
            vst1q_f64(o.add(i), r);
            i += W;
        }
    } else {
        let div = vdupq_n_f64(st.corners as f64);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut s = vdupq_n_f64(0.0);
            for bits in 0..st.corners {
                s = vaddq_f64(s, vld2q_f64(c.offset(st.inner[bits])).0);
            }
            let pred = vdivq_f64(s, div);
            let mut r = vaddq_f64(pred, vmulq_f64(v2eb, vld1q_f64(cp.add(i))));
            if round32 {
                r = vcvt_f64_f32(vcvt_f32_f64(r));
            }
            vst1q_f64(o.add(i), r);
            i += W;
        }
    }
    if round32 {
        scalar::predict_recon_run_f32(buf, base + 2 * v, st, &codes[v..], two_eb, &mut out[v..]);
    } else {
        scalar::predict_recon_run_f64(buf, base + 2 * v, st, &codes[v..], two_eb, &mut out[v..]);
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn recon_run(
    preds: &[f64],
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    let n = out.len();
    let v2eb = vdupq_n_f64(two_eb);
    let mut i = 0;
    while i + 2 <= n {
        let p = vld1q_f64(preds.as_ptr().add(i));
        let c = vld1q_f64(codes.as_ptr().add(i));
        let mut r = vaddq_f64(p, vmulq_f64(v2eb, c));
        if round32 {
            r = vcvt_f64_f32(vcvt_f32_f64(r));
        }
        vst1q_f64(out.as_mut_ptr().add(i), r);
        i += 2;
    }
    if round32 {
        scalar::recon_run_f32(&preds[i..], &codes[i..], two_eb, &mut out[i..]);
    } else {
        scalar::recon_run_f64(&preds[i..], &codes[i..], two_eb, &mut out[i..]);
    }
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "neon")]
pub(crate) unsafe fn quantize_run(
    actuals: &[f64],
    preds: &[f64],
    eb: f64,
    two_eb: f64,
    radius_f: f64,
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
    round32: bool,
) {
    let n = actuals.len();
    let inf = vdupq_n_f64(f64::INFINITY);
    let veb = vdupq_n_f64(eb);
    let v2eb = vdupq_n_f64(two_eb);
    let vrad = vdupq_n_f64(radius_f);
    let zero = vdupq_n_f64(0.0);
    let mut i = 0;
    while i + 2 <= n {
        let a = vld1q_f64(actuals.as_ptr().add(i));
        let p = vld1q_f64(preds.as_ptr().add(i));
        // Non-finite escape: NOT(|x| < inf) is true for ±inf and NaN.
        let nf_a = not_u64(vcltq_f64(vabsq_f64(a), inf));
        let nf_p = not_u64(vcltq_f64(vabsq_f64(p), inf));
        let mut esc = vorrq_u64(nf_a, nf_p);
        let diff = vsubq_f64(a, p);
        // FRINTA is exactly f64::round (nearest, ties away from zero).
        let q = vrndaq_f64(vdivq_f64(diff, v2eb));
        esc = vorrq_u64(esc, vcgtq_f64(vabsq_f64(q), vrad));
        // q + 0.0 reproduces the scalar `q as i64 as f64` round-trip.
        let qn = vaddq_f64(q, zero);
        let recon = vaddq_f64(p, vmulq_f64(v2eb, qn));
        esc = vorrq_u64(esc, vcgtq_f64(vabsq_f64(vsubq_f64(recon, a)), veb));
        let r = if round32 {
            let r32 = vcvt_f64_f32(vcvt_f32_f64(recon));
            esc = vorrq_u64(esc, vcgtq_f64(vabsq_f64(vsubq_f64(r32, a)), veb));
            r32
        } else {
            recon
        };
        vst1q_f64(q_out.as_mut_ptr().add(i), qn);
        vst1q_f64(recon_out.as_mut_ptr().add(i), r);
        *escape_out.get_unchecked_mut(i) = (vgetq_lane_u64::<0>(esc) & 1) as u8;
        *escape_out.get_unchecked_mut(i + 1) = (vgetq_lane_u64::<1>(esc) & 1) as u8;
        i += 2;
    }
    if round32 {
        scalar::quantize_run_f32(
            &actuals[i..],
            &preds[i..],
            eb,
            two_eb,
            radius_f,
            &mut q_out[i..],
            &mut recon_out[i..],
            &mut escape_out[i..],
        );
    } else {
        scalar::quantize_run_f64(
            &actuals[i..],
            &preds[i..],
            eb,
            two_eb,
            radius_f,
            &mut q_out[i..],
            &mut recon_out[i..],
            &mut escape_out[i..],
        );
    }
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn gather2_f64(src: &[f64], start: usize, out: &mut [f64]) {
    const W: usize = 2;
    let v = vec_points(start, 0, src.len(), out.len(), W);
    let p = src.as_ptr();
    let mut i = 0;
    while i < v {
        vst1q_f64(out.as_mut_ptr().add(i), vld2q_f64(p.add(start + 2 * i)).0);
        i += W;
    }
    scalar::gather2_f64(src, start + 2 * v, &mut out[v..]);
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn gather2_f32(src: &[f32], start: usize, out: &mut [f32]) {
    const W: usize = 4;
    let v = vec_points(start, 0, src.len(), out.len(), W);
    let p = src.as_ptr();
    let mut i = 0;
    while i < v {
        vst1q_f32(out.as_mut_ptr().add(i), vld2q_f32(p.add(start + 2 * i)).0);
        i += W;
    }
    scalar::gather2_f32(src, start + 2 * v, &mut out[v..]);
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn scatter2_f64(src: &[f64], dst: &mut [f64], start: usize) {
    const W: usize = 2;
    let v = vec_points(start, 0, dst.len(), src.len(), W);
    let mut i = 0;
    while i < v {
        let d = dst.as_mut_ptr().add(start + 2 * i);
        let cur = vld2q_f64(d);
        vst2q_f64(d, float64x2x2_t(vld1q_f64(src.as_ptr().add(i)), cur.1));
        i += W;
    }
    scalar::scatter2_f64(&src[v..], dst, start + 2 * v);
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn scatter2_f32(src: &[f32], dst: &mut [f32], start: usize) {
    const W: usize = 4;
    let v = vec_points(start, 0, dst.len(), src.len(), W);
    let mut i = 0;
    while i < v {
        let d = dst.as_mut_ptr().add(start + 2 * i);
        let cur = vld2q_f32(d);
        vst2q_f32(d, float32x4x2_t(vld1q_f32(src.as_ptr().add(i)), cur.1));
        i += W;
    }
    scalar::scatter2_f32(&src[v..], dst, start + 2 * v);
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn narrow_run(src: &[f64], out: &mut [f32]) {
    let n = src.len();
    let mut i = 0;
    while i + 2 <= n {
        let x = vld1q_f64(src.as_ptr().add(i));
        vst1_f32(out.as_mut_ptr().add(i), vcvt_f32_f64(x));
        i += 2;
    }
    scalar::narrow_run(&src[i..], &mut out[i..]);
}

#[target_feature(enable = "neon")]
pub(crate) unsafe fn widen_run(src: &[f32], out: &mut [f64]) {
    let n = src.len();
    let mut i = 0;
    while i + 2 <= n {
        let x = vld1_f32(src.as_ptr().add(i));
        vst1q_f64(out.as_mut_ptr().add(i), vcvt_f64_f32(x));
        i += 2;
    }
    scalar::widen_run(&src[i..], &mut out[i..]);
}
