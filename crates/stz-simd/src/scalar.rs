//! Portable reference implementation of every kernel.
//!
//! This module *defines* the semantics: each vector lane must reproduce
//! these exact operations, in this exact order, per output element. The
//! scalar kernels mirror the original per-point loops in `stz-core`
//! (`StencilOffsets::predict_interior`), `stz-codec`
//! (`LinearQuantizer::quantize`/`reconstruct`) and `stz-sz3`
//! (`quantize_scalar`/`reconstruct_scalar`) operation for operation, so
//! `STZ_SIMD=scalar` and the pre-SIMD code paths agree bit-for-bit too.

use crate::Stencil;

/// Predict the point at `buf[base + 2*i]` for each `i` in `0..out.len()`.
///
/// Mirrors `StencilOffsets::predict_interior`: corner sums in ascending
/// bit order, then `wi*si + wo*so` (cubic) or `s / corners` (linear).
/// The caller guarantees every stencil tap of every point is in bounds.
pub fn predict_run(buf: &[f64], base: usize, st: &Stencil, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = predict_one(buf, base + 2 * i, st);
    }
}

/// One point of [`predict_run`].
#[inline(always)]
pub fn predict_one(buf: &[f64], gidx: usize, st: &Stencil) -> f64 {
    let base = gidx as isize;
    if st.cubic {
        let mut si = 0.0;
        let mut so = 0.0;
        for bits in 0..st.corners {
            si += buf[(base + st.inner[bits]) as usize];
            so += buf[(base + st.outer[bits]) as usize];
        }
        st.wi * si + st.wo * so
    } else {
        let mut s = 0.0;
        for bits in 0..st.corners {
            s += buf[(base + st.inner[bits]) as usize];
        }
        s / st.corners as f64
    }
}

/// `out[i] = preds[i] + two_eb * codes[i]` — the f64 reconstruction of
/// `LinearQuantizer::reconstruct` (the `T = f64` round-trip is identity).
pub fn recon_run_f64(preds: &[f64], codes: &[f64], two_eb: f64, out: &mut [f64]) {
    for i in 0..out.len() {
        out[i] = preds[i] + two_eb * codes[i];
    }
}

/// [`recon_run_f64`] rounded through `f32`, as `reconstruct_scalar::<f32>`
/// does (`T::from_f64(..).to_f64()` = `as f32 as f64`).
pub fn recon_run_f32(preds: &[f64], codes: &[f64], two_eb: f64, out: &mut [f64]) {
    for i in 0..out.len() {
        out[i] = (preds[i] + two_eb * codes[i]) as f32 as f64;
    }
}

/// Fused predict + f64 reconstruct:
/// `out[i] = predict_one(buf, base + 2*i) + two_eb * codes[i]`. Bitwise
/// equal to [`predict_run`] followed by [`recon_run_f64`] — the prediction
/// merely stays in a register instead of a scratch buffer.
pub fn predict_recon_run_f64(
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = predict_one(buf, base + 2 * i, st) + two_eb * codes[i];
    }
}

/// [`predict_recon_run_f64`] rounded through `f32`.
pub fn predict_recon_run_f32(
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = (predict_one(buf, base + 2 * i, st) + two_eb * codes[i]) as f32 as f64;
    }
}

/// One point of the f64 linear quantizer:
/// `(q, reconstruction, escape)`. Mirrors `LinearQuantizer::quantize`
/// exactly; `q + 0.0` reproduces the original's `q as i64 as f64`
/// round-trip (which only normalizes `-0.0` for in-radius codes).
#[inline(always)]
pub fn quantize_one_f64(
    actual: f64,
    pred: f64,
    eb: f64,
    two_eb: f64,
    radius_f: f64,
) -> (f64, f64, bool) {
    if !actual.is_finite() || !pred.is_finite() {
        return (0.0, 0.0, true);
    }
    let diff = actual - pred;
    let q = (diff / two_eb).round();
    if q.abs() > radius_f {
        return (0.0, 0.0, true);
    }
    let q = q + 0.0;
    let reconstructed = pred + two_eb * q;
    if (reconstructed - actual).abs() > eb {
        return (q, reconstructed, true);
    }
    (q, reconstructed, false)
}

/// One point of the f32-rounded quantizer (`quantize_scalar::<f32>`): the
/// f64 outcome, re-rounded through `f32` and re-checked against the bound.
#[inline(always)]
pub fn quantize_one_f32(
    actual: f64,
    pred: f64,
    eb: f64,
    two_eb: f64,
    radius_f: f64,
) -> (f64, f64, bool) {
    let (q, reconstructed, escape) = quantize_one_f64(actual, pred, eb, two_eb, radius_f);
    if escape {
        return (q, reconstructed, true);
    }
    let rounded = reconstructed as f32 as f64;
    if (rounded - actual).abs() > eb {
        return (q, rounded, true);
    }
    (q, rounded, false)
}

/// Batch [`quantize_one_f64`]: fills `q_out`, `recon_out` and
/// `escape_out` (0 = coded, 1 = escape) for each `actuals[i]`/`preds[i]`.
#[allow(clippy::too_many_arguments)]
pub fn quantize_run_f64(
    actuals: &[f64],
    preds: &[f64],
    eb: f64,
    two_eb: f64,
    radius_f: f64,
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
) {
    for i in 0..actuals.len() {
        let (q, r, e) = quantize_one_f64(actuals[i], preds[i], eb, two_eb, radius_f);
        q_out[i] = q;
        recon_out[i] = r;
        escape_out[i] = e as u8;
    }
}

/// Batch [`quantize_one_f32`].
#[allow(clippy::too_many_arguments)]
pub fn quantize_run_f32(
    actuals: &[f64],
    preds: &[f64],
    eb: f64,
    two_eb: f64,
    radius_f: f64,
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
) {
    for i in 0..actuals.len() {
        let (q, r, e) = quantize_one_f32(actuals[i], preds[i], eb, two_eb, radius_f);
        q_out[i] = q;
        recon_out[i] = r;
        escape_out[i] = e as u8;
    }
}

/// `out[i] = src[start + 2*i]` (stride-2 gather along x).
pub fn gather2_f64(src: &[f64], start: usize, out: &mut [f64]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = src[start + 2 * i];
    }
}

/// `out[i] = src[start + 2*i]`.
pub fn gather2_f32(src: &[f32], start: usize, out: &mut [f32]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = src[start + 2 * i];
    }
}

/// `dst[start + 2*i] = src[i]` (stride-2 scatter along x).
pub fn scatter2_f64(src: &[f64], dst: &mut [f64], start: usize) {
    for (i, &v) in src.iter().enumerate() {
        dst[start + 2 * i] = v;
    }
}

/// `dst[start + 2*i] = src[i]`.
pub fn scatter2_f32(src: &[f32], dst: &mut [f32], start: usize) {
    for (i, &v) in src.iter().enumerate() {
        dst[start + 2 * i] = v;
    }
}

/// `out[i] = src[i] as f32` (IEEE round-to-nearest-even narrowing).
pub fn narrow_run(src: &[f64], out: &mut [f32]) {
    for i in 0..src.len() {
        out[i] = src[i] as f32;
    }
}

/// `out[i] = src[i] as f64` (exact widening).
pub fn widen_run(src: &[f32], out: &mut [f64]) {
    for i in 0..src.len() {
        out[i] = src[i] as f64;
    }
}
