//! Runtime-dispatched SIMD kernels for the STZ hot loops.
//!
//! The three inner loops that dominate STZ's compress/decompress time —
//! interpolation prediction, linear quantization, and the stride-2
//! sub-lattice gather/scatter — are ported here as batch kernels with one
//! implementation per instruction set:
//!
//! * **x86_64** — SSE2 (the architectural baseline, always available) and
//!   AVX2 (detected at runtime with `is_x86_feature_detected!`),
//! * **aarch64** — NEON (the architectural baseline),
//! * **scalar** — a portable reference implementation that defines the
//!   exact semantics every vector lane must reproduce.
//!
//! ## The byte-identity contract
//!
//! Every lane produces **bit-identical** results to the scalar reference:
//! the same compressed streams and the same decoded fields, byte for byte
//! (ARCHITECTURE.md invariant 8). The kernels vectorize *across*
//! independent output points and keep the scalar operation order *inside*
//! each lane — no FMA contraction, no reassociation, no horizontal
//! reductions. IEEE 754 then guarantees identical results, because packed
//! add/sub/mul/div/compare/convert round exactly like their scalar
//! counterparts. Where an instruction set lacks an exact primitive (SSE2
//! has no round-to-nearest-away-from-zero and no packed truncate), the
//! kernel falls back to scalar code for that portion rather than
//! approximate.
//!
//! ## Dispatch
//!
//! [`active_lane`] picks the widest available lane once per process,
//! overridable with the `STZ_SIMD` environment variable
//! (`auto`/`scalar`/`sse2`/`avx2`/`neon`). Requesting a lane the host
//! cannot run (or an unknown name) logs a warning and falls back to
//! scalar, so a typo can never produce illegal instructions — or wrong
//! bytes. The selected lane is recorded in the
//! `stz_simd_dispatch{lane="…"}` gauge of the global telemetry registry.
//! Tests iterate [`available_lanes`] and pin a specific lane with
//! [`override_lane`].
//!
//! See `docs/SIMD.md` for the full dispatch rules and a checklist for
//! adding a lane.

#![warn(missing_docs)]

mod kernels;
#[cfg(target_arch = "aarch64")]
mod neon;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use kernels::{
    gather2_f32, gather2_f64, narrow_run, predict_recon_run_f32, predict_recon_run_f64,
    predict_run, quantize_run_f32, quantize_run_f64, recon_run_f32, recon_run_f64, scatter2_f32,
    scatter2_f64, widen_run, Stencil,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// One SIMD instruction-set lane the kernels can dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Portable scalar reference (defines the semantics).
    Scalar,
    /// x86_64 SSE2: 2×f64 / 4×f32 (baseline, always available on x86_64).
    Sse2,
    /// x86_64 AVX2: 4×f64 / 8×f32 (runtime-detected).
    Avx2,
    /// aarch64 NEON: 2×f64 / 4×f32 (baseline on aarch64).
    Neon,
}

impl Lane {
    /// Stable lower-case name, matching the `STZ_SIMD` values.
    pub const fn name(self) -> &'static str {
        match self {
            Lane::Scalar => "scalar",
            Lane::Sse2 => "sse2",
            Lane::Avx2 => "avx2",
            Lane::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> Lane {
        match v {
            1 => Lane::Sse2,
            2 => Lane::Avx2,
            3 => Lane::Neon,
            _ => Lane::Scalar,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            Lane::Scalar => 0,
            Lane::Sse2 => 1,
            Lane::Avx2 => 2,
            Lane::Neon => 3,
        }
    }
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lanes the current host can execute, always starting with
/// [`Lane::Scalar`] and ending with the lane `auto` would pick.
pub fn available_lanes() -> Vec<Lane> {
    let mut lanes = vec![Lane::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        lanes.push(Lane::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            lanes.push(Lane::Avx2);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        lanes.push(Lane::Neon);
    }
    lanes
}

fn is_available(lane: Lane) -> bool {
    available_lanes().contains(&lane)
}

/// `STZ_SIMD=none` (0) or a forced lane (`lane.to_u8() + 1`).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ACTIVE: OnceLock<Lane> = OnceLock::new();

/// The lane every kernel dispatches to in this process.
///
/// Resolved once from `STZ_SIMD` + CPU detection and cached; a test-time
/// [`override_lane`] takes precedence. Because every lane is
/// byte-identical, flipping the override mid-stream cannot change any
/// result — only which instructions compute it.
pub fn active_lane() -> Lane {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => *ACTIVE.get_or_init(resolve),
        v => Lane::from_u8(v - 1),
    }
}

/// Force the dispatched lane (`Some`) or restore `STZ_SIMD`/auto
/// resolution (`None`). Returns the previous override.
///
/// Testing hook for the lane-width identity suites; process-global, so
/// concurrent tests under different overrides are safe only because all
/// lanes produce identical bytes.
///
/// # Panics
/// If the requested lane is not executable on this host.
pub fn override_lane(lane: Option<Lane>) -> Option<Lane> {
    if let Some(l) = lane {
        assert!(is_available(l), "lane {l} is not available on this host");
    }
    let prev = OVERRIDE.swap(lane.map_or(0, |l| l.to_u8() + 1), Ordering::Relaxed);
    match prev {
        0 => None,
        v => Some(Lane::from_u8(v - 1)),
    }
}

/// Force lane resolution now (normally it happens lazily on the first
/// kernel call), so the `stz_simd_dispatch` gauge is registered even in
/// processes that never touch a hot loop. Returns the resolved lane.
pub fn announce() -> Lane {
    let _ = *ACTIVE.get_or_init(resolve);
    active_lane()
}

fn resolve() -> Lane {
    let lane = match std::env::var("STZ_SIMD") {
        Err(_) => best_available(),
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => best_available(),
            "scalar" => Lane::Scalar,
            "sse2" => requested(Lane::Sse2),
            "avx2" => requested(Lane::Avx2),
            "neon" => requested(Lane::Neon),
            other => {
                stz_telemetry::log_warn!(
                    "stz_simd",
                    "unknown STZ_SIMD value {other:?}, falling back to scalar"
                );
                Lane::Scalar
            }
        },
    };
    stz_telemetry::global().gauge("stz_simd_dispatch", &[("lane", lane.name())]).set(1);
    lane
}

fn requested(lane: Lane) -> Lane {
    if is_available(lane) {
        lane
    } else {
        stz_telemetry::log_warn!(
            "stz_simd",
            "STZ_SIMD={} is not available on this host, falling back to scalar",
            lane.name()
        );
        Lane::Scalar
    }
}

fn best_available() -> Lane {
    *available_lanes().last().expect("scalar is always available")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available() {
        let lanes = available_lanes();
        assert_eq!(lanes[0], Lane::Scalar);
        assert!(is_available(active_lane()));
    }

    #[test]
    fn override_roundtrip() {
        let prev = override_lane(Some(Lane::Scalar));
        assert_eq!(active_lane(), Lane::Scalar);
        override_lane(prev);
    }

    #[test]
    fn names_are_stable() {
        for lane in [Lane::Scalar, Lane::Sse2, Lane::Avx2, Lane::Neon] {
            assert_eq!(format!("{lane}"), lane.name());
        }
    }

    #[test]
    fn dispatch_gauge_registered() {
        // announce() resolves the STZ_SIMD/auto lane (ignoring any test
        // override) and registers the dispatch gauge as a side effect.
        announce();
        let text = stz_telemetry::global().render();
        assert!(
            text.contains("stz_simd_dispatch{lane=\""),
            "gauge missing from exposition:\n{text}"
        );
    }
}
