//! x86_64 lanes: SSE2 (baseline) and AVX2 (runtime-detected).
//!
//! Byte-identity notes (see the crate docs for the general contract):
//!
//! * Packed `add/sub/mul/div/cmp` round exactly like their scalar
//!   counterparts, and no FMA is ever emitted (`fma` is a separate target
//!   feature and these functions only enable `avx2`).
//! * `f64::round` (round half away from zero) has no packed instruction;
//!   [`round_away_pd`] emulates it exactly from truncation: the fraction
//!   `x - trunc(x)` is exact by Sterbenz's lemma, so comparing it against
//!   0.5 reproduces the scalar tie-away decision bit-for-bit.
//! * SSE2 has neither `roundpd` nor a packed f64 truncation, so the
//!   quantizer and scatter stay scalar under SSE2; the remaining kernels
//!   (predict, reconstruct, gather, narrow, widen) vectorize 2-wide.
//! * `cvtpd2ps`/`cvtps2pd` are the packed forms of the same conversions
//!   rustc emits for scalar `as` casts (`cvtsd2ss`/`cvtss2sd`).
//!
//! Stride-2 loads read *pairs* (evens and the odd elements between them),
//! so a full-width vector may touch one element past the last even index;
//! [`vec_points`] bounds the vector portion and the scalar reference
//! finishes the run.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::kernels::{vec_points, Stencil};
use crate::scalar;
use std::arch::x86_64::*;

const TRUNC: i32 = _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC;

/// Load `[p[0], p[2], p[4], p[6]]`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_evens_pd(p: *const f64) -> __m256d {
    fix_evens_pd(load_evens_pd_mixed(p))
}

/// Load the four even elements at `p` in the mixed lane order
/// `[e0, e2, e1, e3]` — one in-lane shuffle, no cross-lane permute.
///
/// Because [`fix_evens_pd`] is a pure element rearrangement, it commutes
/// with elementwise add/mul: stencil kernels sum several of these mixed
/// vectors, apply the weights, and permute **once** at the end instead of
/// per tap (the cross-lane permute is the port-5 bottleneck of the
/// stride-2 stencil loop). The deferred computation is bit-identical —
/// each output element sees exactly the same scalar operations.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load_evens_pd_mixed(p: *const f64) -> __m256d {
    let v0 = _mm256_loadu_pd(p);
    let v1 = _mm256_loadu_pd(p.add(4));
    // [v0_0, v1_0, v0_2, v1_2] = [e0, e2, e1, e3].
    _mm256_shuffle_pd::<0b0000>(v0, v1)
}

/// Swap the middle pair of a [`load_evens_pd_mixed`] vector:
/// `[e0, e2, e1, e3]` -> `[e0, e1, e2, e3]`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn fix_evens_pd(v: __m256d) -> __m256d {
    _mm256_permute4x64_pd::<0xD8>(v)
}

/// Load `[p[0], p[2]]`.
#[inline]
unsafe fn load_evens_sse(p: *const f64) -> __m128d {
    _mm_shuffle_pd::<0b00>(_mm_loadu_pd(p), _mm_loadu_pd(p.add(2)))
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn predict_run_avx2(buf: &[f64], base: usize, st: &Stencil, out: &mut [f64]) {
    const W: usize = 4;
    let (_, hi) = st.offset_range();
    let v = vec_points(base, hi, buf.len(), out.len(), W);
    let p = buf.as_ptr();
    let o = out.as_mut_ptr();
    if st.cubic {
        let wi = _mm256_set1_pd(st.wi);
        let wo = _mm256_set1_pd(st.wo);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut si = _mm256_setzero_pd();
            let mut so = _mm256_setzero_pd();
            for bits in 0..st.corners {
                si = _mm256_add_pd(si, load_evens_pd_mixed(c.offset(st.inner[bits])));
                so = _mm256_add_pd(so, load_evens_pd_mixed(c.offset(st.outer[bits])));
            }
            let r = _mm256_add_pd(_mm256_mul_pd(wi, si), _mm256_mul_pd(wo, so));
            _mm256_storeu_pd(o.add(i), fix_evens_pd(r));
            i += W;
        }
    } else {
        let div = _mm256_set1_pd(st.corners as f64);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut s = _mm256_setzero_pd();
            for bits in 0..st.corners {
                s = _mm256_add_pd(s, load_evens_pd_mixed(c.offset(st.inner[bits])));
            }
            _mm256_storeu_pd(o.add(i), fix_evens_pd(_mm256_div_pd(s, div)));
            i += W;
        }
    }
    scalar::predict_run(buf, base + 2 * v, st, &mut out[v..]);
}

pub(crate) unsafe fn predict_run_sse2(buf: &[f64], base: usize, st: &Stencil, out: &mut [f64]) {
    const W: usize = 2;
    let (_, hi) = st.offset_range();
    let v = vec_points(base, hi, buf.len(), out.len(), W);
    let p = buf.as_ptr();
    let o = out.as_mut_ptr();
    if st.cubic {
        let wi = _mm_set1_pd(st.wi);
        let wo = _mm_set1_pd(st.wo);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut si = _mm_setzero_pd();
            let mut so = _mm_setzero_pd();
            for bits in 0..st.corners {
                si = _mm_add_pd(si, load_evens_sse(c.offset(st.inner[bits])));
                so = _mm_add_pd(so, load_evens_sse(c.offset(st.outer[bits])));
            }
            let r = _mm_add_pd(_mm_mul_pd(wi, si), _mm_mul_pd(wo, so));
            _mm_storeu_pd(o.add(i), r);
            i += W;
        }
    } else {
        let div = _mm_set1_pd(st.corners as f64);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut s = _mm_setzero_pd();
            for bits in 0..st.corners {
                s = _mm_add_pd(s, load_evens_sse(c.offset(st.inner[bits])));
            }
            _mm_storeu_pd(o.add(i), _mm_div_pd(s, div));
            i += W;
        }
    }
    scalar::predict_run(buf, base + 2 * v, st, &mut out[v..]);
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn predict_recon_run_avx2(
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    const W: usize = 4;
    let (_, hi) = st.offset_range();
    let v = vec_points(base, hi, buf.len(), out.len(), W);
    let p = buf.as_ptr();
    let cp = codes.as_ptr();
    let o = out.as_mut_ptr();
    let v2eb = _mm256_set1_pd(two_eb);
    if st.cubic {
        let wi = _mm256_set1_pd(st.wi);
        let wo = _mm256_set1_pd(st.wo);
        let mut i = 0;
        if st.corners == 2 {
            // 1D cubic (the decode hot path): fixed trip count lets the
            // compiler schedule the four tap loads together. The leading
            // `0.0 +` of the accumulator is kept so the operation sequence
            // (and signed zeros) match the generic loop exactly.
            let z = _mm256_setzero_pd();
            let (i0, i1) = (st.inner[0], st.inner[1]);
            let (o0, o1) = (st.outer[0], st.outer[1]);
            while i < v {
                let c = p.add(base + 2 * i);
                let si = _mm256_add_pd(
                    _mm256_add_pd(z, load_evens_pd_mixed(c.offset(i0))),
                    load_evens_pd_mixed(c.offset(i1)),
                );
                let so = _mm256_add_pd(
                    _mm256_add_pd(z, load_evens_pd_mixed(c.offset(o0))),
                    load_evens_pd_mixed(c.offset(o1)),
                );
                let pred =
                    fix_evens_pd(_mm256_add_pd(_mm256_mul_pd(wi, si), _mm256_mul_pd(wo, so)));
                let mut r = _mm256_add_pd(pred, _mm256_mul_pd(v2eb, _mm256_loadu_pd(cp.add(i))));
                if round32 {
                    r = _mm256_cvtps_pd(_mm256_cvtpd_ps(r));
                }
                _mm256_storeu_pd(o.add(i), r);
                i += W;
            }
        }
        while i < v {
            let c = p.add(base + 2 * i);
            let mut si = _mm256_setzero_pd();
            let mut so = _mm256_setzero_pd();
            for bits in 0..st.corners {
                si = _mm256_add_pd(si, load_evens_pd_mixed(c.offset(st.inner[bits])));
                so = _mm256_add_pd(so, load_evens_pd_mixed(c.offset(st.outer[bits])));
            }
            let pred = fix_evens_pd(_mm256_add_pd(_mm256_mul_pd(wi, si), _mm256_mul_pd(wo, so)));
            let mut r = _mm256_add_pd(pred, _mm256_mul_pd(v2eb, _mm256_loadu_pd(cp.add(i))));
            if round32 {
                r = _mm256_cvtps_pd(_mm256_cvtpd_ps(r));
            }
            _mm256_storeu_pd(o.add(i), r);
            i += W;
        }
    } else {
        let div = _mm256_set1_pd(st.corners as f64);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut s = _mm256_setzero_pd();
            for bits in 0..st.corners {
                s = _mm256_add_pd(s, load_evens_pd_mixed(c.offset(st.inner[bits])));
            }
            let pred = fix_evens_pd(_mm256_div_pd(s, div));
            let mut r = _mm256_add_pd(pred, _mm256_mul_pd(v2eb, _mm256_loadu_pd(cp.add(i))));
            if round32 {
                r = _mm256_cvtps_pd(_mm256_cvtpd_ps(r));
            }
            _mm256_storeu_pd(o.add(i), r);
            i += W;
        }
    }
    if round32 {
        scalar::predict_recon_run_f32(buf, base + 2 * v, st, &codes[v..], two_eb, &mut out[v..]);
    } else {
        scalar::predict_recon_run_f64(buf, base + 2 * v, st, &codes[v..], two_eb, &mut out[v..]);
    }
}

pub(crate) unsafe fn predict_recon_run_sse2(
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    const W: usize = 2;
    let (_, hi) = st.offset_range();
    let v = vec_points(base, hi, buf.len(), out.len(), W);
    let p = buf.as_ptr();
    let cp = codes.as_ptr();
    let o = out.as_mut_ptr();
    let v2eb = _mm_set1_pd(two_eb);
    if st.cubic {
        let wi = _mm_set1_pd(st.wi);
        let wo = _mm_set1_pd(st.wo);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut si = _mm_setzero_pd();
            let mut so = _mm_setzero_pd();
            for bits in 0..st.corners {
                si = _mm_add_pd(si, load_evens_sse(c.offset(st.inner[bits])));
                so = _mm_add_pd(so, load_evens_sse(c.offset(st.outer[bits])));
            }
            let pred = _mm_add_pd(_mm_mul_pd(wi, si), _mm_mul_pd(wo, so));
            let mut r = _mm_add_pd(pred, _mm_mul_pd(v2eb, _mm_loadu_pd(cp.add(i))));
            if round32 {
                r = _mm_cvtps_pd(_mm_cvtpd_ps(r));
            }
            _mm_storeu_pd(o.add(i), r);
            i += W;
        }
    } else {
        let div = _mm_set1_pd(st.corners as f64);
        let mut i = 0;
        while i < v {
            let c = p.add(base + 2 * i);
            let mut s = _mm_setzero_pd();
            for bits in 0..st.corners {
                s = _mm_add_pd(s, load_evens_sse(c.offset(st.inner[bits])));
            }
            let pred = _mm_div_pd(s, div);
            let mut r = _mm_add_pd(pred, _mm_mul_pd(v2eb, _mm_loadu_pd(cp.add(i))));
            if round32 {
                r = _mm_cvtps_pd(_mm_cvtpd_ps(r));
            }
            _mm_storeu_pd(o.add(i), r);
            i += W;
        }
    }
    if round32 {
        scalar::predict_recon_run_f32(buf, base + 2 * v, st, &codes[v..], two_eb, &mut out[v..]);
    } else {
        scalar::predict_recon_run_f64(buf, base + 2 * v, st, &codes[v..], two_eb, &mut out[v..]);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn recon_run_avx2(
    preds: &[f64],
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    let n = out.len();
    let v2eb = _mm256_set1_pd(two_eb);
    let mut i = 0;
    while i + 4 <= n {
        let p = _mm256_loadu_pd(preds.as_ptr().add(i));
        let c = _mm256_loadu_pd(codes.as_ptr().add(i));
        let mut r = _mm256_add_pd(p, _mm256_mul_pd(v2eb, c));
        if round32 {
            r = _mm256_cvtps_pd(_mm256_cvtpd_ps(r));
        }
        _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
        i += 4;
    }
    if round32 {
        scalar::recon_run_f32(&preds[i..], &codes[i..], two_eb, &mut out[i..]);
    } else {
        scalar::recon_run_f64(&preds[i..], &codes[i..], two_eb, &mut out[i..]);
    }
}

pub(crate) unsafe fn recon_run_sse2(
    preds: &[f64],
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    let n = out.len();
    let v2eb = _mm_set1_pd(two_eb);
    let mut i = 0;
    while i + 2 <= n {
        let p = _mm_loadu_pd(preds.as_ptr().add(i));
        let c = _mm_loadu_pd(codes.as_ptr().add(i));
        let mut r = _mm_add_pd(p, _mm_mul_pd(v2eb, c));
        if round32 {
            r = _mm_cvtps_pd(_mm_cvtpd_ps(r));
        }
        _mm_storeu_pd(out.as_mut_ptr().add(i), r);
        i += 2;
    }
    if round32 {
        scalar::recon_run_f32(&preds[i..], &codes[i..], two_eb, &mut out[i..]);
    } else {
        scalar::recon_run_f64(&preds[i..], &codes[i..], two_eb, &mut out[i..]);
    }
}

/// Exact `f64::round` (half away from zero): `t = trunc(x)` and the
/// fraction `x − t` is exact (Sterbenz), so `|fraction| ≥ 0.5` decides
/// the away-step. Matches the scalar result for every input, including
/// ±0.5, the nextafter(0.5) neighbors, values ≥ 2^52, ±0, NaN and ±inf.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn round_away_pd(x: __m256d) -> __m256d {
    let sign = _mm256_set1_pd(-0.0);
    let t = _mm256_round_pd::<TRUNC>(x);
    let f = _mm256_sub_pd(x, t);
    let absf = _mm256_andnot_pd(sign, f);
    let away = _mm256_cmp_pd::<_CMP_GE_OQ>(absf, _mm256_set1_pd(0.5));
    let one_signed = _mm256_or_pd(_mm256_and_pd(sign, x), _mm256_set1_pd(1.0));
    _mm256_add_pd(t, _mm256_and_pd(away, one_signed))
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn quantize_run_avx2(
    actuals: &[f64],
    preds: &[f64],
    eb: f64,
    two_eb: f64,
    radius_f: f64,
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
    round32: bool,
) {
    let n = actuals.len();
    let sign = _mm256_set1_pd(-0.0);
    let inf = _mm256_set1_pd(f64::INFINITY);
    let veb = _mm256_set1_pd(eb);
    let v2eb = _mm256_set1_pd(two_eb);
    let vrad = _mm256_set1_pd(radius_f);
    let zero = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let a = _mm256_loadu_pd(actuals.as_ptr().add(i));
        let p = _mm256_loadu_pd(preds.as_ptr().add(i));
        // Escape on non-finite input: |x| NLT inf is true for ±inf and NaN.
        let nf_a = _mm256_cmp_pd::<_CMP_NLT_UQ>(_mm256_andnot_pd(sign, a), inf);
        let nf_p = _mm256_cmp_pd::<_CMP_NLT_UQ>(_mm256_andnot_pd(sign, p), inf);
        let mut esc = _mm256_or_pd(nf_a, nf_p);
        let diff = _mm256_sub_pd(a, p);
        let q = round_away_pd(_mm256_div_pd(diff, v2eb));
        let absq = _mm256_andnot_pd(sign, q);
        esc = _mm256_or_pd(esc, _mm256_cmp_pd::<_CMP_GT_OQ>(absq, vrad));
        // q + 0.0 reproduces the scalar `q as i64 as f64` round-trip
        // (normalizing -0.0); LLVM cannot fold it away without fast-math.
        let qn = _mm256_add_pd(q, zero);
        let recon = _mm256_add_pd(p, _mm256_mul_pd(v2eb, qn));
        let err = _mm256_andnot_pd(sign, _mm256_sub_pd(recon, a));
        esc = _mm256_or_pd(esc, _mm256_cmp_pd::<_CMP_GT_OQ>(err, veb));
        let r = if round32 {
            let r32 = _mm256_cvtps_pd(_mm256_cvtpd_ps(recon));
            let err32 = _mm256_andnot_pd(sign, _mm256_sub_pd(r32, a));
            esc = _mm256_or_pd(esc, _mm256_cmp_pd::<_CMP_GT_OQ>(err32, veb));
            r32
        } else {
            recon
        };
        _mm256_storeu_pd(q_out.as_mut_ptr().add(i), qn);
        _mm256_storeu_pd(recon_out.as_mut_ptr().add(i), r);
        let m = _mm256_movemask_pd(esc) as u32;
        for j in 0..4 {
            *escape_out.get_unchecked_mut(i + j) = ((m >> j) & 1) as u8;
        }
        i += 4;
    }
    if round32 {
        scalar::quantize_run_f32(
            &actuals[i..],
            &preds[i..],
            eb,
            two_eb,
            radius_f,
            &mut q_out[i..],
            &mut recon_out[i..],
            &mut escape_out[i..],
        );
    } else {
        scalar::quantize_run_f64(
            &actuals[i..],
            &preds[i..],
            eb,
            two_eb,
            radius_f,
            &mut q_out[i..],
            &mut recon_out[i..],
            &mut escape_out[i..],
        );
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gather2_f64_avx2(src: &[f64], start: usize, out: &mut [f64]) {
    const W: usize = 4;
    let v = vec_points(start, 0, src.len(), out.len(), W);
    let p = src.as_ptr();
    let mut i = 0;
    while i < v {
        _mm256_storeu_pd(out.as_mut_ptr().add(i), load_evens_pd(p.add(start + 2 * i)));
        i += W;
    }
    scalar::gather2_f64(src, start + 2 * v, &mut out[v..]);
}

pub(crate) unsafe fn gather2_f64_sse2(src: &[f64], start: usize, out: &mut [f64]) {
    const W: usize = 2;
    let v = vec_points(start, 0, src.len(), out.len(), W);
    let p = src.as_ptr();
    let mut i = 0;
    while i < v {
        _mm_storeu_pd(out.as_mut_ptr().add(i), load_evens_sse(p.add(start + 2 * i)));
        i += W;
    }
    scalar::gather2_f64(src, start + 2 * v, &mut out[v..]);
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gather2_f32_avx2(src: &[f32], start: usize, out: &mut [f32]) {
    const W: usize = 8;
    let v = vec_points(start, 0, src.len(), out.len(), W);
    let p = src.as_ptr();
    let mut i = 0;
    while i < v {
        let v0 = _mm256_loadu_ps(p.add(start + 2 * i));
        let v1 = _mm256_loadu_ps(p.add(start + 2 * i + 8));
        // Per 128-bit half: evens of v0 then evens of v1 → pairs land as
        // [e0 e1 e4 e5 | e2 e3 e6 e7]; permuting 64-bit pairs fixes order.
        let s = _mm256_shuffle_ps::<0b10_00_10_00>(v0, v1);
        let r = _mm256_castpd_ps(_mm256_permute4x64_pd::<0xD8>(_mm256_castps_pd(s)));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += W;
    }
    scalar::gather2_f32(src, start + 2 * v, &mut out[v..]);
}

pub(crate) unsafe fn gather2_f32_sse2(src: &[f32], start: usize, out: &mut [f32]) {
    const W: usize = 4;
    let v = vec_points(start, 0, src.len(), out.len(), W);
    let p = src.as_ptr();
    let mut i = 0;
    while i < v {
        let v0 = _mm_loadu_ps(p.add(start + 2 * i));
        let v1 = _mm_loadu_ps(p.add(start + 2 * i + 4));
        _mm_storeu_ps(out.as_mut_ptr().add(i), _mm_shuffle_ps::<0b10_00_10_00>(v0, v1));
        i += W;
    }
    scalar::gather2_f32(src, start + 2 * v, &mut out[v..]);
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scatter2_f64_avx2(src: &[f64], dst: &mut [f64], start: usize) {
    const W: usize = 4;
    let v = vec_points(start, 0, dst.len(), src.len(), W);
    let mut i = 0;
    while i < v {
        let s = _mm256_loadu_pd(src.as_ptr().add(i));
        // [x0 x0 x1 x1] / [x2 x2 x3 x3]: the evens of the two dst vectors.
        let lo = _mm256_permute4x64_pd::<0x50>(s);
        let hi = _mm256_permute4x64_pd::<0xFA>(s);
        let d = dst.as_mut_ptr().add(start + 2 * i);
        let d0 = _mm256_loadu_pd(d);
        let d1 = _mm256_loadu_pd(d.add(4));
        // Rewrite the odd elements with their current values (exclusive
        // &mut borrow makes the read-modify-write race-free).
        _mm256_storeu_pd(d, _mm256_blend_pd::<0b0101>(d0, lo));
        _mm256_storeu_pd(d.add(4), _mm256_blend_pd::<0b0101>(d1, hi));
        i += W;
    }
    scalar::scatter2_f64(&src[v..], dst, start + 2 * v);
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scatter2_f32_avx2(src: &[f32], dst: &mut [f32], start: usize) {
    const W: usize = 8;
    let v = vec_points(start, 0, dst.len(), src.len(), W);
    let mut i = 0;
    while i < v {
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        let dup_lo = _mm256_unpacklo_ps(s, s); // [x0 x0 x1 x1 | x4 x4 x5 x5]
        let dup_hi = _mm256_unpackhi_ps(s, s); // [x2 x2 x3 x3 | x6 x6 x7 x7]
        let lo = _mm256_permute2f128_ps::<0x20>(dup_lo, dup_hi);
        let hi = _mm256_permute2f128_ps::<0x31>(dup_lo, dup_hi);
        let d = dst.as_mut_ptr().add(start + 2 * i);
        let d0 = _mm256_loadu_ps(d);
        let d1 = _mm256_loadu_ps(d.add(8));
        _mm256_storeu_ps(d, _mm256_blend_ps::<0b01010101>(d0, lo));
        _mm256_storeu_ps(d.add(8), _mm256_blend_ps::<0b01010101>(d1, hi));
        i += W;
    }
    scalar::scatter2_f32(&src[v..], dst, start + 2 * v);
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn narrow_run_avx2(src: &[f64], out: &mut [f32]) {
    let n = src.len();
    let mut i = 0;
    while i + 4 <= n {
        let x = _mm256_loadu_pd(src.as_ptr().add(i));
        _mm_storeu_ps(out.as_mut_ptr().add(i), _mm256_cvtpd_ps(x));
        i += 4;
    }
    scalar::narrow_run(&src[i..], &mut out[i..]);
}

pub(crate) unsafe fn narrow_run_sse2(src: &[f64], out: &mut [f32]) {
    let n = src.len();
    let mut i = 0;
    while i + 2 <= n {
        let x = _mm_loadu_pd(src.as_ptr().add(i));
        // Two f32 results in the low 64 bits; movsd stores them unaligned.
        _mm_store_sd(out.as_mut_ptr().add(i) as *mut f64, _mm_castps_pd(_mm_cvtpd_ps(x)));
        i += 2;
    }
    scalar::narrow_run(&src[i..], &mut out[i..]);
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn widen_run_avx2(src: &[f32], out: &mut [f64]) {
    let n = src.len();
    let mut i = 0;
    while i + 4 <= n {
        let x = _mm_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_cvtps_pd(x));
        i += 4;
    }
    scalar::widen_run(&src[i..], &mut out[i..]);
}

pub(crate) unsafe fn widen_run_sse2(src: &[f32], out: &mut [f64]) {
    let n = src.len();
    let mut i = 0;
    while i + 2 <= n {
        let x = _mm_load_sd(src.as_ptr().add(i) as *const f64);
        _mm_storeu_pd(out.as_mut_ptr().add(i), _mm_cvtps_pd(_mm_castpd_ps(x)));
        i += 2;
    }
    scalar::widen_run(&src[i..], &mut out[i..]);
}
