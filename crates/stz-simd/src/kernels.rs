//! Dispatched batch kernels: bounds-checked safe wrappers that route each
//! call to the selected lane's implementation, with scalar tails.
//!
//! Every wrapper validates the *scalar* access pattern up front (each
//! output element's loads/stores are in bounds) and then lets the lane
//! implementation decide how many points it can process with full-width
//! vector loads — a vector covering the last few stride-2 points may read
//! one element past the last even index, so the implementations finish
//! with the scalar reference for the unsafe remainder.

use crate::{scalar, Lane};

/// Interior interpolation stencil in flattened-grid form: `corners = 2^k`
/// linear-index offsets for the inner (±1·stride) and outer (±3·stride)
/// diagonal rings, plus the cubic weights. Mirrors
/// `stz_core::kernels::StencilOffsets`.
#[derive(Debug, Clone, Copy)]
pub struct Stencil {
    /// Cubic (inner + outer ring) or multilinear (inner ring only).
    pub cubic: bool,
    /// Number of diagonal corners, `2^k` for `k` active axes.
    pub corners: usize,
    /// Inner-ring offsets, `corners` of them used.
    pub inner: [isize; 8],
    /// Outer-ring offsets (cubic only).
    pub outer: [isize; 8],
    /// Inner-ring weight.
    pub wi: f64,
    /// Outer-ring weight.
    pub wo: f64,
    /// Cached tap-offset bounds (kernels consult them on every row, so
    /// they are computed once at construction rather than per call).
    lo: isize,
    hi: isize,
}

impl Stencil {
    /// Build a stencil, caching the tap-offset bounds.
    pub fn new(
        cubic: bool,
        corners: usize,
        inner: [isize; 8],
        outer: [isize; 8],
        wi: f64,
        wo: f64,
    ) -> Stencil {
        let (mut lo, mut hi) = (0isize, 0isize);
        for &o in &inner[..corners] {
            lo = lo.min(o);
            hi = hi.max(o);
        }
        if cubic {
            for &o in &outer[..corners] {
                lo = lo.min(o);
                hi = hi.max(o);
            }
        }
        Stencil { cubic, corners, inner, outer, wi, wo, lo, hi }
    }

    /// Most negative / most positive offset any tap uses.
    #[inline(always)]
    pub(crate) fn offset_range(&self) -> (isize, isize) {
        (self.lo, self.hi)
    }
}

/// Largest multiple of `w` (≤ `n`) such that processing that many stride-2
/// points with `2w`-wide vector loads/stores starting at `base` (tap reach
/// `max_off`) stays inside a buffer of length `len`.
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "aarch64")), allow(dead_code))]
pub(crate) fn vec_points(base: usize, max_off: isize, len: usize, n: usize, w: usize) -> usize {
    let mut v = n - n % w;
    while v > 0 {
        // Highest index touched by the last chunk's widest load.
        let hi = base as isize + 2 * (v as isize - 1) + max_off + 1;
        if (hi as usize) < len {
            break;
        }
        v -= w;
    }
    v
}

/// Batch interior prediction: `out[i]` predicts the grid point at
/// flattened index `base + 2*i`. See [`scalar::predict_run`] for the
/// reference semantics.
///
/// # Panics
/// If any stencil tap of any point falls outside `buf`.
pub fn predict_run(lane: Lane, buf: &[f64], base: usize, st: &Stencil, out: &mut [f64]) {
    if out.is_empty() {
        return;
    }
    let (lo, hi) = st.offset_range();
    let last = base + 2 * (out.len() - 1);
    assert!(base as isize + lo >= 0, "stencil underruns the grid");
    assert!(
        (last as isize + hi) >= 0 && ((last as isize + hi) as usize) < buf.len(),
        "stencil overruns the grid"
    );
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::predict_run_sse2(buf, base, st, out) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::predict_run_avx2(buf, base, st, out) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::predict_run(buf, base, st, out) },
        _ => scalar::predict_run(buf, base, st, out),
    }
}

/// Fused predict + f64 reconstruct:
/// `out[i] = predict(base + 2*i) + two_eb * codes[i]`. Bitwise equal to
/// [`predict_run`] followed by [`recon_run_f64`], saving the prediction
/// round-trip through a scratch buffer (the decode hot path).
///
/// # Panics
/// If any stencil tap of any point falls outside `buf`, or
/// `codes.len() != out.len()`.
pub fn predict_recon_run_f64(
    lane: Lane,
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
) {
    predict_recon_run(lane, buf, base, st, codes, two_eb, out, false)
}

/// [`predict_recon_run_f64`] rounded through `f32` (the `T = f32` mirror).
pub fn predict_recon_run_f32(
    lane: Lane,
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
) {
    predict_recon_run(lane, buf, base, st, codes, two_eb, out, true)
}

#[allow(clippy::too_many_arguments)]
fn predict_recon_run(
    lane: Lane,
    buf: &[f64],
    base: usize,
    st: &Stencil,
    codes: &[f64],
    two_eb: f64,
    out: &mut [f64],
    round32: bool,
) {
    if out.is_empty() {
        return;
    }
    assert!(codes.len() == out.len());
    let (lo, hi) = st.offset_range();
    let last = base + 2 * (out.len() - 1);
    assert!(base as isize + lo >= 0, "stencil underruns the grid");
    assert!(
        (last as isize + hi) >= 0 && ((last as isize + hi) as usize) < buf.len(),
        "stencil overruns the grid"
    );
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe {
            crate::x86::predict_recon_run_sse2(buf, base, st, codes, two_eb, out, round32)
        },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe {
            crate::x86::predict_recon_run_avx2(buf, base, st, codes, two_eb, out, round32)
        },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe {
            crate::neon::predict_recon_run(buf, base, st, codes, two_eb, out, round32)
        },
        _ => {
            if round32 {
                scalar::predict_recon_run_f32(buf, base, st, codes, two_eb, out)
            } else {
                scalar::predict_recon_run_f64(buf, base, st, codes, two_eb, out)
            }
        }
    }
}

/// Batch f64 reconstruction: `out[i] = preds[i] + two_eb * codes[i]`.
pub fn recon_run_f64(lane: Lane, preds: &[f64], codes: &[f64], two_eb: f64, out: &mut [f64]) {
    let n = out.len();
    assert!(preds.len() == n && codes.len() == n);
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::recon_run_sse2(preds, codes, two_eb, out, false) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::recon_run_avx2(preds, codes, two_eb, out, false) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::recon_run(preds, codes, two_eb, out, false) },
        _ => scalar::recon_run_f64(preds, codes, two_eb, out),
    }
}

/// Batch f32-rounded reconstruction (the `T = f32` mirror).
pub fn recon_run_f32(lane: Lane, preds: &[f64], codes: &[f64], two_eb: f64, out: &mut [f64]) {
    let n = out.len();
    assert!(preds.len() == n && codes.len() == n);
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::recon_run_sse2(preds, codes, two_eb, out, true) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::recon_run_avx2(preds, codes, two_eb, out, true) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::recon_run(preds, codes, two_eb, out, true) },
        _ => scalar::recon_run_f32(preds, codes, two_eb, out),
    }
}

/// Batch f64 quantization; see [`scalar::quantize_run_f64`].
///
/// SSE2 lacks exact packed round-away-from-zero, so it uses the scalar
/// reference (the other kernels still vectorize under SSE2).
#[allow(clippy::too_many_arguments)]
pub fn quantize_run_f64(
    lane: Lane,
    actuals: &[f64],
    preds: &[f64],
    eb: f64,
    two_eb: f64,
    radius_f: f64,
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
) {
    let n = actuals.len();
    assert!(preds.len() == n && q_out.len() == n && recon_out.len() == n && escape_out.len() == n);
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe {
            crate::x86::quantize_run_avx2(
                actuals, preds, eb, two_eb, radius_f, q_out, recon_out, escape_out, false,
            )
        },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe {
            crate::neon::quantize_run(
                actuals, preds, eb, two_eb, radius_f, q_out, recon_out, escape_out, false,
            )
        },
        _ => scalar::quantize_run_f64(
            actuals, preds, eb, two_eb, radius_f, q_out, recon_out, escape_out,
        ),
    }
}

/// Batch f32-rounded quantization; see [`scalar::quantize_run_f32`].
#[allow(clippy::too_many_arguments)]
pub fn quantize_run_f32(
    lane: Lane,
    actuals: &[f64],
    preds: &[f64],
    eb: f64,
    two_eb: f64,
    radius_f: f64,
    q_out: &mut [f64],
    recon_out: &mut [f64],
    escape_out: &mut [u8],
) {
    let n = actuals.len();
    assert!(preds.len() == n && q_out.len() == n && recon_out.len() == n && escape_out.len() == n);
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe {
            crate::x86::quantize_run_avx2(
                actuals, preds, eb, two_eb, radius_f, q_out, recon_out, escape_out, true,
            )
        },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe {
            crate::neon::quantize_run(
                actuals, preds, eb, two_eb, radius_f, q_out, recon_out, escape_out, true,
            )
        },
        _ => scalar::quantize_run_f32(
            actuals, preds, eb, two_eb, radius_f, q_out, recon_out, escape_out,
        ),
    }
}

/// Stride-2 gather: `out[i] = src[start + 2*i]`.
///
/// # Panics
/// If `start + 2*(out.len()-1)` is out of bounds.
pub fn gather2_f64(lane: Lane, src: &[f64], start: usize, out: &mut [f64]) {
    if out.is_empty() {
        return;
    }
    assert!(start + 2 * (out.len() - 1) < src.len(), "gather overruns the source");
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::gather2_f64_sse2(src, start, out) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::gather2_f64_avx2(src, start, out) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::gather2_f64(src, start, out) },
        _ => scalar::gather2_f64(src, start, out),
    }
}

/// Stride-2 gather: `out[i] = src[start + 2*i]`.
pub fn gather2_f32(lane: Lane, src: &[f32], start: usize, out: &mut [f32]) {
    if out.is_empty() {
        return;
    }
    assert!(start + 2 * (out.len() - 1) < src.len(), "gather overruns the source");
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::gather2_f32_sse2(src, start, out) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::gather2_f32_avx2(src, start, out) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::gather2_f32(src, start, out) },
        _ => scalar::gather2_f32(src, start, out),
    }
}

/// Stride-2 scatter: `dst[start + 2*i] = src[i]`. Intermediate odd
/// elements are left untouched (vector lanes may rewrite them with their
/// current value, which requires the exclusive `&mut` borrow).
pub fn scatter2_f64(lane: Lane, src: &[f64], dst: &mut [f64], start: usize) {
    if src.is_empty() {
        return;
    }
    assert!(start + 2 * (src.len() - 1) < dst.len(), "scatter overruns the destination");
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::scatter2_f64_avx2(src, dst, start) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::scatter2_f64(src, dst, start) },
        _ => scalar::scatter2_f64(src, dst, start),
    }
}

/// Stride-2 scatter: `dst[start + 2*i] = src[i]`.
pub fn scatter2_f32(lane: Lane, src: &[f32], dst: &mut [f32], start: usize) {
    if src.is_empty() {
        return;
    }
    assert!(start + 2 * (src.len() - 1) < dst.len(), "scatter overruns the destination");
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::scatter2_f32_avx2(src, dst, start) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::scatter2_f32(src, dst, start) },
        _ => scalar::scatter2_f32(src, dst, start),
    }
}

/// Narrow f64 → f32 (`as` cast semantics, round-to-nearest-even).
pub fn narrow_run(lane: Lane, src: &[f64], out: &mut [f32]) {
    assert_eq!(src.len(), out.len());
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::narrow_run_sse2(src, out) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::narrow_run_avx2(src, out) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::narrow_run(src, out) },
        _ => scalar::narrow_run(src, out),
    }
}

/// Widen f32 → f64 (exact).
pub fn widen_run(lane: Lane, src: &[f32], out: &mut [f64]) {
    assert_eq!(src.len(), out.len());
    match lane {
        #[cfg(target_arch = "x86_64")]
        Lane::Sse2 => unsafe { crate::x86::widen_run_sse2(src, out) },
        #[cfg(target_arch = "x86_64")]
        Lane::Avx2 => unsafe { crate::x86::widen_run_avx2(src, out) },
        #[cfg(target_arch = "aarch64")]
        Lane::Neon => unsafe { crate::neon::widen_run(src, out) },
        _ => scalar::widen_run(src, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::available_lanes;

    /// Deterministic value stream with adversarial cases sprinkled in:
    /// exact halves, -0.0, NaN, infinities, subnormals, huge magnitudes.
    fn test_values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        (0..n)
            .map(|i| match i % 16 {
                0 => 0.5 * (next() % 41) as f64 - 10.0, // exact halves incl. ±0.5
                1 => -0.0,
                2 if i % 64 == 2 => f64::NAN,
                3 if i % 64 == 3 => f64::INFINITY,
                4 if i % 64 == 4 => f64::NEG_INFINITY,
                5 => f64::MIN_POSITIVE / 2.0, // subnormal
                6 => 1e300,
                7 => 0.49999999999999994, // nextafter(0.5, 0)
                _ => {
                    let u = next();
                    ((u >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 8.0
                }
            })
            .collect()
    }

    fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn predict_matches_scalar_on_every_lane() {
        // Largest synthetic stencil reach below is 3*(1+7+64) = 216 either
        // side, so leave generous margin.
        let buf = test_values(2048, 7);
        for k in 1..=3usize {
            for cubic in [false, true] {
                let corners = 1usize << k;
                let mut inner = [0isize; 8];
                let mut outer = [0isize; 8];
                // Synthetic diagonal stencil along x plus row strides.
                for bits in 0..corners {
                    let (mut di, mut do_) = (0isize, 0isize);
                    for j in 0..k {
                        let s = [1isize, 7, 64][j];
                        let sign = if bits >> j & 1 == 1 { 1 } else { -1 };
                        di += sign * s;
                        do_ += sign * 3 * s;
                    }
                    inner[bits] = di;
                    outer[bits] = do_;
                }
                let st = Stencil::new(cubic, corners, inner, outer, 9.0 / 16.0, -1.0 / 16.0);
                let (lo, hi) = st.offset_range();
                let base = (-lo) as usize + 1;
                let n = (buf.len() - base - hi as usize - 2) / 2;
                let mut want = vec![0.0; n];
                crate::scalar::predict_run(&buf, base, &st, &mut want);
                for lane in available_lanes() {
                    let mut got = vec![1.0; n];
                    predict_run(lane, &buf, base, &st, &mut got);
                    assert_bits_eq(&got, &want, &format!("predict k={k} cubic={cubic} {lane}"));
                }
            }
        }
    }

    #[test]
    fn quantize_matches_scalar_on_every_lane() {
        let n = 257;
        let actuals = test_values(n, 11);
        let preds = test_values(n, 23);
        for (eb, radius) in [(1e-3, (1i64 << 15) as f64), (1e-9, 4.0), (0.25, 1e18)] {
            let two_eb = 2.0 * eb;
            let mut wq = vec![0.0; n];
            let mut wr = vec![0.0; n];
            let mut we = vec![0u8; n];
            for f32_mode in [false, true] {
                let runner = if f32_mode { quantize_run_f32 } else { quantize_run_f64 };
                let sc = if f32_mode {
                    crate::scalar::quantize_run_f32
                } else {
                    crate::scalar::quantize_run_f64
                };
                sc(&actuals, &preds, eb, two_eb, radius, &mut wq, &mut wr, &mut we);
                for lane in available_lanes() {
                    let mut gq = vec![9.0; n];
                    let mut gr = vec![9.0; n];
                    let mut ge = vec![7u8; n];
                    runner(lane, &actuals, &preds, eb, two_eb, radius, &mut gq, &mut gr, &mut ge);
                    for i in 0..n {
                        assert_eq!(
                            ge[i], we[i],
                            "escape[{i}] lane={lane} f32={f32_mode} eb={eb} a={} p={}",
                            actuals[i], preds[i]
                        );
                        if we[i] == 0 {
                            assert_eq!(gq[i].to_bits(), wq[i].to_bits(), "q[{i}] lane={lane}");
                            assert_eq!(gr[i].to_bits(), wr[i].to_bits(), "recon[{i}] lane={lane}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn recon_matches_scalar_on_every_lane() {
        let n = 131;
        let preds = test_values(n, 3);
        let codes: Vec<f64> = (0..n).map(|i| (i as i64 - 60) as f64).collect();
        for two_eb in [2e-3, 0.5] {
            for f32_mode in [false, true] {
                let mut want = vec![0.0; n];
                if f32_mode {
                    crate::scalar::recon_run_f32(&preds, &codes, two_eb, &mut want);
                } else {
                    crate::scalar::recon_run_f64(&preds, &codes, two_eb, &mut want);
                }
                for lane in available_lanes() {
                    let mut got = vec![1.0; n];
                    if f32_mode {
                        recon_run_f32(lane, &preds, &codes, two_eb, &mut got);
                    } else {
                        recon_run_f64(lane, &preds, &codes, two_eb, &mut got);
                    }
                    assert_bits_eq(&got, &want, &format!("recon f32={f32_mode} {lane}"));
                }
            }
        }
    }

    #[test]
    fn gather_scatter_match_scalar_on_every_lane() {
        // Exercise the tight-bound case: the last gathered even element is
        // the final element of the source, so vector over-read must clip.
        for n in [1usize, 2, 3, 7, 8, 9, 31, 64, 65] {
            for start in [0usize, 1, 5] {
                let src = test_values(start + 2 * n - 1, n as u64);
                let mut want = vec![0.0; n];
                crate::scalar::gather2_f64(&src, start, &mut want);
                for lane in available_lanes() {
                    let mut got = vec![1.0; n];
                    gather2_f64(lane, &src, start, &mut got);
                    assert_bits_eq(&got, &want, &format!("gather2_f64 n={n} start={start} {lane}"));
                    let mut dst_w = src.clone();
                    let mut dst_g = src.clone();
                    crate::scalar::scatter2_f64(&want, &mut dst_w, start);
                    scatter2_f64(lane, &want, &mut dst_g, start);
                    assert_bits_eq(&dst_g, &dst_w, &format!("scatter2_f64 n={n} {lane}"));

                    let src32: Vec<f32> = src.iter().map(|&v| v as f32).collect();
                    let mut want32 = vec![0.0f32; n];
                    crate::scalar::gather2_f32(&src32, start, &mut want32);
                    let mut got32 = vec![1.0f32; n];
                    gather2_f32(lane, &src32, start, &mut got32);
                    for i in 0..n {
                        assert_eq!(got32[i].to_bits(), want32[i].to_bits(), "gather2_f32[{i}]");
                    }
                    let mut d32w = src32.clone();
                    let mut d32g = src32.clone();
                    crate::scalar::scatter2_f32(&want32, &mut d32w, start);
                    scatter2_f32(lane, &want32, &mut d32g, start);
                    for i in 0..d32w.len() {
                        assert_eq!(d32g[i].to_bits(), d32w[i].to_bits(), "scatter2_f32[{i}]");
                    }
                }
            }
        }
    }

    #[test]
    fn narrow_widen_match_scalar_on_every_lane() {
        let n = 97;
        let src = test_values(n, 31);
        let mut want = vec![0.0f32; n];
        crate::scalar::narrow_run(&src, &mut want);
        for lane in available_lanes() {
            let mut got = vec![1.0f32; n];
            narrow_run(lane, &src, &mut got);
            for i in 0..n {
                assert_eq!(got[i].to_bits(), want[i].to_bits(), "narrow[{i}] {lane}");
            }
            let mut back_w = vec![0.0f64; n];
            let mut back_g = vec![1.0f64; n];
            crate::scalar::widen_run(&want, &mut back_w);
            widen_run(lane, &want, &mut back_g);
            assert_bits_eq(&back_g, &back_w, &format!("widen {lane}"));
        }
    }

    #[test]
    fn quantize_round_edge_cases_match_f64_round() {
        // The vector round emulation must agree with f64::round via the
        // quantizer: with two_eb = 1 and pred = 0, q == round(actual).
        let edge = [
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            0.49999999999999994,
            -0.49999999999999994,
            0.5000000000000001,
            -0.3,
            0.3,
            4503599627370495.5,
            4503599627370496.0,
            -1e200,
            0.0,
            -0.0,
            1e-320,
        ];
        let preds = vec![0.0; edge.len()];
        // The production radius is an i64 cast to f64, so use one in range;
        // codes beyond it escape instead of being compared.
        let radius = 1e18;
        for lane in available_lanes() {
            let mut q = vec![0.0; edge.len()];
            let mut r = vec![0.0; edge.len()];
            let mut e = vec![0u8; edge.len()];
            quantize_run_f64(lane, &edge, &preds, 0.5, 1.0, radius, &mut q, &mut r, &mut e);
            for (i, &x) in edge.iter().enumerate() {
                let rounded = x.round();
                if rounded.abs() > radius {
                    assert_eq!(e[i], 1, "expected radius escape at {x} on {lane}");
                    continue;
                }
                assert_eq!(e[i], 0, "unexpected escape at {x} on {lane}");
                let want = (rounded as i64) as f64;
                assert_eq!(q[i].to_bits(), want.to_bits(), "round({x}) on {lane}");
            }
        }
    }
    #[test]
    #[ignore]
    fn microbench_predict_recon() {
        // k=1 cubic along z in a 64^3 grid (typical finest-level block),
        // rows of 29 interior points (scale-16-like) and 2048-point runs.
        let n = 64usize;
        let buf: Vec<f64> = (0..n * n * n).map(|i| ((i as f64) * 0.001).sin()).collect();
        let stride = (n * n) as isize;
        let st = Stencil::new(
            true,
            1,
            [stride, 0, 0, 0, 0, 0, 0, 0],
            [3 * stride, 0, 0, 0, 0, 0, 0, 0],
            0.5625,
            -0.0625,
        );
        let codes: Vec<f64> = (0..64).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut out = vec![0.0; 64];
        for lane in crate::available_lanes() {
            // rows of m points starting mid-grid
            for m in [13usize, 29, 61] {
                let reps = 2_000_000 / m;
                let t = std::time::Instant::now();
                for r in 0..reps {
                    let base = 4 * n * n + ((r % 32) + 4) * n + 2;
                    crate::predict_recon_run_f32(
                        lane,
                        &buf,
                        base,
                        &st,
                        &codes[..m],
                        2e-3,
                        &mut out[..m],
                    );
                }
                let el = t.elapsed().as_secs_f64();
                let pts = (reps * m) as f64;
                println!("{lane} m={m}: {:.2} ns/pt", el / pts * 1e9);
                std::hint::black_box(&out);
            }
        }
    }
}
