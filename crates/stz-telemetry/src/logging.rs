//! Leveled structured logging to stderr, configured by `STZ_LOG`.
//!
//! `STZ_LOG` is a comma-separated list of tokens: one level
//! (`off`, `error`, `warn`, `info`, `debug`, `trace`; default `warn`)
//! and optionally a format (`text`, the default, or `json`). Examples:
//!
//! ```text
//! STZ_LOG=debug        # text lines at debug and above
//! STZ_LOG=info,json    # JSON lines at info and above
//! STZ_LOG=off          # nothing
//! ```
//!
//! Text lines are logfmt-style; JSON lines are one object per line. Both
//! carry a UNIX timestamp, the level, a `target` (the emitting
//! subsystem), the message, and any structured fields:
//!
//! ```text
//! ts=1754650000.123 level=warn target=stz-serve msg="frame rejected" peer=127.0.0.1:52114
//! {"ts":1754650000.123,"level":"warn","target":"stz-serve","msg":"frame rejected","peer":"127.0.0.1:52114"}
//! ```

use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed and nothing recovered it.
    Error,
    /// Something went wrong but the process carries on (a rejected frame,
    /// a skipped container).
    Warn,
    /// Notable lifecycle events.
    Info,
    /// Per-request detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    /// `None` = logging off.
    level: Option<Level>,
    json: bool,
}

/// Parse an `STZ_LOG` value. Unknown tokens are ignored, so a typo
/// degrades to the defaults rather than silencing the log.
fn parse_config(spec: Option<&str>) -> Config {
    let mut cfg = Config { level: Some(Level::Warn), json: false };
    for token in spec.unwrap_or("").split(',') {
        match token.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => cfg.level = None,
            "error" => cfg.level = Some(Level::Error),
            "warn" => cfg.level = Some(Level::Warn),
            "info" => cfg.level = Some(Level::Info),
            "debug" => cfg.level = Some(Level::Debug),
            "trace" => cfg.level = Some(Level::Trace),
            "json" => cfg.json = true,
            "text" => cfg.json = false,
            _ => {}
        }
    }
    cfg
}

fn config() -> Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    *CONFIG.get_or_init(|| parse_config(std::env::var("STZ_LOG").ok().as_deref()))
}

/// Whether a record at `level` would be emitted. The `log_*!` macros
/// check this before formatting anything, so disabled levels cost one
/// branch.
pub fn log_enabled(level: Level) -> bool {
    config().level.is_some_and(|max| level <= max)
}

/// Emit one structured record to stderr (used by the `log_*!` macros;
/// call those instead). Fields render after the message in the order
/// given.
pub fn log_record(level: Level, target: &str, msg: &str, fields: &[(&str, &dyn Display)]) {
    if !log_enabled(level) {
        return;
    }
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let ts = format!("{}.{:03}", ts.as_secs(), ts.subsec_millis());
    let mut line = String::with_capacity(96);
    if config().json {
        line.push_str(&format!(
            "{{\"ts\":{ts},\"level\":\"{}\",\"target\":{},\"msg\":{}",
            level.as_str(),
            json_str(target),
            json_str(msg)
        ));
        for (k, v) in fields {
            line.push_str(&format!(",{}:{}", json_str(k), json_str(&v.to_string())));
        }
        line.push('}');
    } else {
        line.push_str(&format!(
            "ts={ts} level={} target={target} msg={}",
            level.as_str(),
            logfmt_value(msg)
        ));
        for (k, v) in fields {
            line.push_str(&format!(" {k}={}", logfmt_value(&v.to_string())));
        }
    }
    line.push('\n');
    // One write_all per record: lines from concurrent threads interleave
    // whole, not mid-line.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Quote a logfmt value only when it needs it.
fn logfmt_value(s: &str) -> String {
    if !s.is_empty() && s.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '=') {
        s.to_string()
    } else {
        json_str(s)
    }
}

/// Quote + escape a JSON string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emit a record at an explicit [`Level`]:
/// `log_at!(Level, "target", "format {args}"; "key" => value, …)`.
/// The `; key => value` field list is optional. Nothing is formatted
/// unless the level is enabled.
#[macro_export]
macro_rules! log_at {
    ($level:expr, $target:expr, $fmt:expr $(, $arg:expr)* $(; $($k:expr => $v:expr),+ $(,)?)?) => {
        if $crate::log_enabled($level) {
            $crate::log_record(
                $level,
                $target,
                &::std::format!($fmt $(, $arg)*),
                &[$($(($k, &$v as &dyn ::std::fmt::Display)),+)?],
            );
        }
    };
}

/// `log_error!("target", "format"; "key" => value, …)` — see [`log_at!`].
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($rest:tt)+) => { $crate::log_at!($crate::Level::Error, $target, $($rest)+) };
}

/// `log_warn!("target", "format"; "key" => value, …)` — see [`log_at!`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($rest:tt)+) => { $crate::log_at!($crate::Level::Warn, $target, $($rest)+) };
}

/// `log_info!("target", "format"; "key" => value, …)` — see [`log_at!`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($rest:tt)+) => { $crate::log_at!($crate::Level::Info, $target, $($rest)+) };
}

/// `log_debug!("target", "format"; "key" => value, …)` — see [`log_at!`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($rest:tt)+) => { $crate::log_at!($crate::Level::Debug, $target, $($rest)+) };
}

/// A per-call-site rate limiter for hot-path logs: under a flood of
/// identical events (e.g. connection rejections at the `--max-conns`
/// cap), [`permit`](LogLimiter::permit) grants at most one emission per
/// interval and counts the rest, so the log shows one line per interval
/// with a `suppressed=` field instead of thousands of identical lines.
///
/// `const`-constructible, so the idiomatic use is a `static` next to the
/// logging call:
///
/// ```
/// static REJECTS: stz_telemetry::LogLimiter = stz_telemetry::LogLimiter::new(5_000);
/// # let msg = "flood";
/// if let Some(suppressed) = REJECTS.permit() {
///     stz_telemetry::log_warn!("stz-serve", "{msg}"; "suppressed" => suppressed);
/// }
/// ```
///
/// Lock-free: a permit is one compare-exchange on the last-emission
/// timestamp; a suppression is one relaxed increment.
pub struct LogLimiter {
    interval_ns: u64,
    /// Nanoseconds since the process clock anchor of the last granted
    /// emission; `u64::MAX` = never emitted.
    last_emit: AtomicU64,
    suppressed: AtomicU64,
}

/// Monotonic nanoseconds since the first limiter call in this process.
fn limiter_now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

impl LogLimiter {
    /// A limiter granting one emission per `interval_ms` milliseconds.
    /// An interval of 0 grants every call (suppression disabled).
    pub const fn new(interval_ms: u64) -> LogLimiter {
        LogLimiter {
            interval_ns: interval_ms * 1_000_000,
            last_emit: AtomicU64::new(u64::MAX),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Ask to emit now. `Some(suppressed)` grants the emission and
    /// reports how many calls were swallowed since the last grant;
    /// `None` means stay silent.
    pub fn permit(&self) -> Option<u64> {
        self.permit_at(limiter_now_ns())
    }

    /// [`permit`](Self::permit) with an explicit clock, so tests can
    /// drive the interval without sleeping.
    pub fn permit_at(&self, now_ns: u64) -> Option<u64> {
        let last = self.last_emit.load(Ordering::Relaxed);
        let due = last == u64::MAX || now_ns.saturating_sub(last) >= self.interval_ns;
        if due
            && self
                .last_emit
                .compare_exchange(last, now_ns, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            return Some(self.suppressed.swap(0, Ordering::Relaxed));
        }
        self.suppressed.fetch_add(1, Ordering::Relaxed);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stz_log_syntax() {
        let d = parse_config(None);
        assert_eq!((d.level, d.json), (Some(Level::Warn), false), "default: warn, text");
        let c = parse_config(Some("debug"));
        assert_eq!(c.level, Some(Level::Debug));
        let c = parse_config(Some("info,json"));
        assert_eq!((c.level, c.json), (Some(Level::Info), true));
        let c = parse_config(Some("json , ERROR"));
        assert_eq!((c.level, c.json), (Some(Level::Error), true), "order/case insensitive");
        assert_eq!(parse_config(Some("off")).level, None);
        let c = parse_config(Some("warp-speed"));
        assert_eq!((c.level, c.json), (Some(Level::Warn), false), "typos degrade to defaults");
    }

    #[test]
    fn level_ordering_gates_correctly() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Trace);
        let cfg = parse_config(Some("info"));
        let max = cfg.level.unwrap();
        assert!(Level::Warn <= max, "warn emitted at info");
        assert!(Level::Debug > max, "debug suppressed at info");
    }

    #[test]
    fn logfmt_values_quote_only_when_needed() {
        assert_eq!(logfmt_value("127.0.0.1:4815"), "127.0.0.1:4815");
        assert_eq!(logfmt_value("two words"), "\"two words\"");
        assert_eq!(logfmt_value("a=b"), "\"a=b\"");
        assert_eq!(logfmt_value(""), "\"\"");
        assert_eq!(json_str("say \"hi\"\n"), "\"say \\\"hi\\\"\\n\"");
    }

    #[test]
    fn macros_compile_in_every_arity() {
        // Smoke: each macro shape expands and runs (output goes to stderr
        // only if STZ_LOG enables it; correctness here is "compiles and
        // does not panic").
        let peer = "127.0.0.1:1";
        crate::log_error!("test", "plain");
        crate::log_warn!("test", "formatted {peer}");
        crate::log_info!("test", "fields"; "peer" => peer, "n" => 3);
        crate::log_debug!("test", "args {} and fields", 7; "k" => "v");
        crate::log_at!(Level::Trace, "test", "explicit level");
    }

    #[test]
    fn limiter_collapses_floods_into_one_line_per_interval() {
        let lim = LogLimiter::new(10); // 10 ms = 10_000_000 ns
                                       // First call always emits, with nothing suppressed yet.
        assert_eq!(lim.permit_at(0), Some(0));
        // A flood inside the interval is swallowed.
        for t in 1..=100 {
            assert_eq!(lim.permit_at(t), None);
        }
        // The next interval emits once, reporting the swallowed count.
        assert_eq!(lim.permit_at(10_000_000), Some(100));
        // Quiet period: the next grant reports zero suppressed.
        assert_eq!(lim.permit_at(20_000_001), Some(0));
    }

    #[test]
    fn limiter_interval_zero_always_emits() {
        let lim = LogLimiter::new(0);
        for t in 0..5 {
            assert_eq!(lim.permit_at(t), Some(0));
        }
    }

    #[test]
    fn limiter_is_flood_safe_across_threads() {
        // Concurrent permits: exactly one thread wins the first grant;
        // every loser is counted. Grants + suppressed == total calls.
        let lim: &'static LogLimiter = Box::leak(Box::new(LogLimiter::new(60_000)));
        let grants: Vec<u64> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| (0..100).filter_map(|_| lim.permit()).sum::<u64>()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let granted_suppressed: u64 = grants.iter().sum();
        let leftover = lim.suppressed.load(Ordering::Relaxed);
        assert_eq!(granted_suppressed + leftover, 800 - 1, "one grant, the rest counted");
    }
}
