//! Request-scoped distributed tracing: causally-linked span trees with
//! tail-based sampling and Perfetto-loadable export.
//!
//! Aggregate metrics ([`crate::Registry`]) answer "how slow are requests
//! on average"; this module answers "where did *this* slow request spend
//! its time". A trace is one request's tree of [`SpanRecord`]s — each
//! span carries its parent id, a name, key=value attributes, and a
//! monotonic start offset + duration. Completed traces are offered to a
//! lock-sharded [`TraceCollector`] whose **tail-based sampler** always
//! retains the slowest-N and all error traces per kind, plus a small
//! ring of the most recent ones, inside a fixed memory budget.
//!
//! Design rules (same contract as the rest of the crate):
//!
//! * **Observation only** — tracing never changes an output byte or a
//!   control-flow decision (ARCHITECTURE invariant 7).
//! * **Near-zero cost when not sampled** — [`span`] on a thread with no
//!   active trace is one thread-local read and returns a no-op guard;
//!   no allocation, no lock.
//! * **No wall-clock randomness** — trace/span ids come from a
//!   deterministic per-process counter mixed through splitmix64 (seeded
//!   by the process id so two cooperating processes do not collide),
//!   and span times are [`Instant`] offsets from the trace start.
//!
//! Context propagates two ways: **across threads** via
//! [`current_context`] / [`install_context`] (the rayon-shim pool
//! captures the caller's context and installs it in every worker, so
//! spans recorded inside pool chunks parent correctly), and **across
//! processes** via the STZP trace-context extension (the client sends
//! its trace id + root span id with a fetch; the server roots its span
//! tree under them — see `docs/SERVER.md`).
//!
//! `STZ_TRACE=off` (or `0`/`none`) disables collection process-wide.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans retained per trace before further spans are counted as dropped
/// — bounds one trace's memory no matter how many pool chunks record.
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// Slowest traces always retained per kind (the tail-sampling "N").
pub const RETAIN_SLOWEST: usize = 4;

/// Error traces retained per kind (newest win).
pub const RETAIN_ERRORS: usize = 8;

/// Most-recent traces retained per kind regardless of duration.
pub const RETAIN_RECENT: usize = 4;

/// Shards of the collector; kinds hash onto shards so concurrent
/// completions of different kinds never contend on one lock.
const SHARDS: usize = 8;

// --- Deterministic ids. -------------------------------------------------

/// splitmix64 finalizer: a bijective mix, so distinct counter values
/// always produce distinct ids.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

static ID_COUNTER: AtomicU64 = AtomicU64::new(0);
static ID_SEED: OnceLock<u64> = OnceLock::new();

/// Next process-unique id: deterministic counter mixed through
/// splitmix64, seeded by the process id so a client and a server on one
/// machine draw from different sequences. Never returns 0 (0 is the
/// "no parent" sentinel in [`SpanRecord`]).
pub fn next_id() -> u64 {
    let seed = *ID_SEED.get_or_init(|| splitmix64(std::process::id() as u64));
    let n = ID_COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(seed ^ n);
    if id == 0 {
        1
    } else {
        id
    }
}

// --- Records. -----------------------------------------------------------

/// One completed span: a named, attributed interval inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the parent span; 0 for a root with no parent. A server
    /// trace's root span parents under the *client's* span id, which is
    /// not in the trace — renderers treat unknown parents as roots.
    pub parent: u64,
    /// What this span timed (e.g. `decode`, `stage:entropy`).
    pub name: String,
    /// Monotonic offset from the trace start, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Key=value attributes (peer address, cache hit/miss, …).
    pub attrs: Vec<(String, String)>,
}

/// One completed trace: a request's whole span tree plus sampling
/// metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Trace id — client-generated when the request carried a
    /// trace-context extension, else minted by [`next_id`].
    pub trace_id: u64,
    /// Sampling kind (frame kind on the server: `full`, `roi`, …;
    /// `client` for client-side fetch traces).
    pub kind: String,
    /// Whether the request failed (error traces are always retained).
    pub error: bool,
    /// Root span duration in nanoseconds (the tail-sampling key).
    pub duration_ns: u64,
    /// Spans that did not fit under [`MAX_SPANS_PER_TRACE`].
    pub dropped_spans: u32,
    /// The spans, in completion order (children before parents).
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// The root span: the one whose parent is not a span of this trace.
    pub fn root(&self) -> Option<&SpanRecord> {
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.id).collect();
        self.spans.iter().find(|s| !ids.contains(&s.parent))
    }
}

// --- The active trace and thread-local context. -------------------------

struct ActiveInner {
    trace_id: u64,
    start: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl ActiveInner {
    /// Append one completed span, honoring the per-trace cap.
    fn record(&self, span: SpanRecord) {
        let mut spans = match self.spans.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if spans.len() >= MAX_SPANS_PER_TRACE {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(span);
    }

    fn offset_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.start).as_nanos() as u64
    }
}

/// A handle to the active trace plus the span id new spans parent
/// under. Cloneable and sendable so pool workers can adopt the caller's
/// context.
#[derive(Clone)]
pub struct TraceContext {
    inner: Arc<ActiveInner>,
    parent: u64,
}

impl TraceContext {
    /// The trace id (what travels in the wire extension).
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// The span id new child spans parent under (the wire extension's
    /// parent-span field).
    pub fn span_id(&self) -> u64 {
        self.parent
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<TraceContext>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's active trace context, if any — capture this
/// before handing work to another thread, then [`install_context`]
/// there.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install a context on this thread (RAII: the previous context is
/// restored when the guard drops, including on unwind).
pub fn install_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// Restores the thread's previous trace context on drop.
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

// --- RAII spans. --------------------------------------------------------

/// An RAII trace span: opened under the thread's current context,
/// recorded (with its real duration) when dropped — which happens on
/// panic-unwind too, so a span that dies mid-decode is still in the
/// trace. A no-op (no allocation) when the thread has no active trace.
pub struct TraceSpan {
    state: Option<SpanState>,
}

struct SpanState {
    inner: Arc<ActiveInner>,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    attrs: Vec<(String, String)>,
    restore: Option<TraceContext>,
}

/// Open a span named `name` under the current context. Child spans
/// opened on this thread before the guard drops parent under it.
pub fn span(name: &'static str) -> TraceSpan {
    let Some(ctx) = current_context() else {
        return TraceSpan { state: None };
    };
    let id = next_id();
    let restore = CURRENT
        .with(|c| c.replace(Some(TraceContext { inner: Arc::clone(&ctx.inner), parent: id })));
    TraceSpan {
        state: Some(SpanState {
            inner: ctx.inner,
            id,
            parent: ctx.parent,
            name,
            start: Instant::now(),
            attrs: Vec::new(),
            restore,
        }),
    }
}

impl TraceSpan {
    /// Whether this span is recording (false off-trace — skip building
    /// expensive attribute values then).
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// Attach one key=value attribute.
    pub fn attr(&mut self, key: &'static str, value: impl ToString) {
        if let Some(state) = &mut self.state {
            state.attrs.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let end = Instant::now();
        CURRENT.with(|c| {
            *c.borrow_mut() = state.restore.clone();
        });
        state.inner.record(SpanRecord {
            id: state.id,
            parent: state.parent,
            name: state.name.to_string(),
            start_ns: state.inner.offset_ns(state.start),
            duration_ns: end.saturating_duration_since(state.start).as_nanos() as u64,
            attrs: state.attrs,
        });
    }
}

/// Record an already-measured interval as a leaf span under the current
/// context (no nesting) — for bridging timings measured elsewhere, e.g.
/// the pool's queue-wait or a stage breakdown captured by value.
pub fn record_span(
    name: &'static str,
    start: Instant,
    end: Instant,
    attrs: &[(&'static str, String)],
) {
    let Some(ctx) = current_context() else { return };
    ctx.inner.record(SpanRecord {
        id: next_id(),
        parent: ctx.parent,
        name: name.to_string(),
        start_ns: ctx.inner.offset_ns(start),
        duration_ns: end.saturating_duration_since(start).as_nanos() as u64,
        attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
    });
}

// --- The trace root guard. ----------------------------------------------

/// The RAII root of one trace: created by [`TraceCollector::start`],
/// installs the context on the current thread, and on drop records the
/// root span, restores the context, and offers the completed trace to
/// the collector's tail sampler.
pub struct TraceGuard {
    state: Option<RootState>,
}

struct RootState {
    collector: &'static TraceCollector,
    inner: Arc<ActiveInner>,
    kind: &'static str,
    root_name: &'static str,
    root_id: u64,
    /// The client's span id (from the wire extension), 0 when local.
    link_parent: u64,
    attrs: Vec<(String, String)>,
    error: bool,
    restore: Option<TraceContext>,
}

impl TraceGuard {
    /// Whether this guard is recording (false when collection is off).
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    /// The trace id (for logging or wire injection).
    pub fn trace_id(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.inner.trace_id)
    }

    /// Attach one key=value attribute to the root span.
    pub fn attr(&mut self, key: &'static str, value: impl ToString) {
        if let Some(state) = &mut self.state {
            state.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Mark the trace as failed — error traces are always retained.
    pub fn set_error(&mut self) {
        if let Some(state) = &mut self.state {
            state.error = true;
        }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let end = Instant::now();
        CURRENT.with(|c| {
            *c.borrow_mut() = state.restore.clone();
        });
        let duration_ns = end.saturating_duration_since(state.inner.start).as_nanos() as u64;
        state.inner.record(SpanRecord {
            id: state.root_id,
            parent: state.link_parent,
            name: state.root_name.to_string(),
            start_ns: 0,
            duration_ns,
            attrs: state.attrs,
        });
        let spans = {
            let mut g = match state.inner.spans.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            std::mem::take(&mut *g)
        };
        state.collector.offer(TraceRecord {
            trace_id: state.inner.trace_id,
            kind: state.kind.to_string(),
            error: state.error,
            duration_ns,
            dropped_spans: state.inner.dropped.load(Ordering::Relaxed) as u32,
            spans,
        });
    }
}

// --- The collector: lock-sharded rings + tail-based sampling. -----------

/// Per-kind retention: the tail sampler's slowest-N, error ring, and
/// recency ring. All bounded; entries are shared `Arc`s so one trace
/// retained by two policies costs one allocation.
#[derive(Default)]
struct KindRetention {
    /// Slowest traces, descending by duration, at most [`RETAIN_SLOWEST`].
    slowest: Vec<Arc<TraceRecord>>,
    /// Newest error traces, at most [`RETAIN_ERRORS`].
    errors: std::collections::VecDeque<Arc<TraceRecord>>,
    /// Newest traces regardless of duration, at most [`RETAIN_RECENT`].
    recent: std::collections::VecDeque<Arc<TraceRecord>>,
}

#[derive(Default)]
struct Shard {
    kinds: BTreeMap<String, KindRetention>,
}

/// The process-wide sink of completed traces. Lock-sharded by kind;
/// every ring is bounded, so the collector's memory is a constant
/// multiple of [`MAX_SPANS_PER_TRACE`] regardless of traffic.
pub struct TraceCollector {
    enabled: AtomicBool,
    shards: Vec<Mutex<Shard>>,
}

impl TraceCollector {
    /// A fresh collector (tests); production code uses [`collector`].
    pub fn new(enabled: bool) -> TraceCollector {
        TraceCollector {
            enabled: AtomicBool::new(enabled),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Whether traces are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable collection (observe-only either way).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Begin a trace of `kind` rooted at a span named `root_name`,
    /// installing the context on the calling thread. `link` carries a
    /// propagated (trace id, parent span id) from the wire extension;
    /// `None` mints a fresh trace id. Returns an inactive guard (all
    /// recording no-ops) when collection is disabled.
    pub fn start(
        &'static self,
        kind: &'static str,
        root_name: &'static str,
        link: Option<(u64, u64)>,
    ) -> TraceGuard {
        if !self.is_enabled() {
            return TraceGuard { state: None };
        }
        let (trace_id, link_parent) = match link {
            Some((t, p)) => (t, p),
            None => (next_id(), 0),
        };
        let root_id = next_id();
        let inner = Arc::new(ActiveInner {
            trace_id,
            start: Instant::now(),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        });
        let restore = CURRENT
            .with(|c| c.replace(Some(TraceContext { inner: Arc::clone(&inner), parent: root_id })));
        TraceGuard {
            state: Some(RootState {
                collector: self,
                inner,
                kind,
                root_name,
                root_id,
                link_parent,
                attrs: Vec::new(),
                error: false,
                restore,
            }),
        }
    }

    fn shard_of(&self, kind: &str) -> &Mutex<Shard> {
        let h = kind.bytes().fold(0u64, |a, b| splitmix64(a ^ b as u64));
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// Offer one completed trace to the tail sampler.
    pub fn offer(&self, record: TraceRecord) {
        if !self.is_enabled() {
            return;
        }
        let record = Arc::new(record);
        let mut shard = match self.shard_of(&record.kind).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let r = shard.kinds.entry(record.kind.clone()).or_default();
        r.recent.push_back(Arc::clone(&record));
        while r.recent.len() > RETAIN_RECENT {
            r.recent.pop_front();
        }
        if record.error {
            r.errors.push_back(Arc::clone(&record));
            while r.errors.len() > RETAIN_ERRORS {
                r.errors.pop_front();
            }
        }
        let pos = r.slowest.partition_point(|t| t.duration_ns >= record.duration_ns);
        if pos < RETAIN_SLOWEST {
            r.slowest.insert(pos, record);
            r.slowest.truncate(RETAIN_SLOWEST);
        }
    }

    /// Every retained trace, deduplicated by record identity (one trace
    /// can sit in several rings of its kind), slowest first. Distinct
    /// records sharing a trace id are all kept — the client and server
    /// halves of one distributed trace share their id by design.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out: Vec<TraceRecord> = Vec::new();
        for shard in &self.shards {
            let shard = match shard.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for r in shard.kinds.values() {
                for t in r.slowest.iter().chain(&r.errors).chain(&r.recent) {
                    if seen.insert(Arc::as_ptr(t) as usize) {
                        out.push((**t).clone());
                    }
                }
            }
        }
        out.sort_by_key(|t| std::cmp::Reverse(t.duration_ns));
        out
    }

    /// Drop every retained trace (tests).
    pub fn clear(&self) {
        for shard in &self.shards {
            match shard.lock() {
                Ok(mut g) => g.kinds.clear(),
                Err(p) => p.into_inner().kinds.clear(),
            }
        }
    }
}

/// The process-wide collector. Enabled unless `STZ_TRACE` is `off`,
/// `none`, or `0`.
pub fn collector() -> &'static TraceCollector {
    static GLOBAL: OnceLock<TraceCollector> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let off = std::env::var("STZ_TRACE")
            .map(|v| matches!(v.trim(), "off" | "none" | "0"))
            .unwrap_or(false);
        TraceCollector::new(!off)
    })
}

// --- Export: text waterfall + Chrome trace-event JSON. ------------------

/// Render traces as a human-readable waterfall: one header line per
/// trace, then one line per span, indented by tree depth, with start
/// offset, duration, and attributes.
pub fn render_waterfall(traces: &[TraceRecord]) -> String {
    let mut out = String::new();
    for t in traces {
        let status = if t.error { "error" } else { "ok" };
        out.push_str(&format!(
            "trace 0x{:016x} [{}] {:.3} ms, {} span(s), {status}{}\n",
            t.trace_id,
            t.kind,
            t.duration_ns as f64 / 1e6,
            t.spans.len(),
            if t.dropped_spans > 0 {
                format!(", {} dropped", t.dropped_spans)
            } else {
                String::new()
            }
        ));
        // Children grouped by parent, ordered by start offset.
        let ids: std::collections::BTreeSet<u64> = t.spans.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for s in &t.spans {
            if ids.contains(&s.parent) {
                children.entry(s.parent).or_default().push(s);
            } else {
                roots.push(s);
            }
        }
        for list in children.values_mut() {
            list.sort_by_key(|s| s.start_ns);
        }
        roots.sort_by_key(|s| s.start_ns);
        let mut stack: Vec<(&SpanRecord, usize)> =
            roots.into_iter().rev().map(|s| (s, 0)).collect();
        while let Some((s, depth)) = stack.pop() {
            let attrs: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!(
                "  {:indent$}{:<24} @{:>10.3} ms  +{:>10.3} ms{}{}\n",
                "",
                s.name,
                s.start_ns as f64 / 1e6,
                s.duration_ns as f64 / 1e6,
                if attrs.is_empty() { "" } else { "  " },
                attrs.join(" "),
                indent = depth * 2,
            ));
            if let Some(kids) = children.get(&s.id) {
                for k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }
    out
}

/// Escape a string for JSON embedding.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render traces in Chrome trace-event JSON (the `traceEvents` array
/// form), loadable in Perfetto / `chrome://tracing`. Each trace becomes
/// one `tid` labeled `"<kind> 0x<trace_id>"`; each span one complete
/// (`"ph":"X"`) event with microsecond `ts`/`dur` and its span/parent
/// ids and attributes under `args`.
pub fn render_chrome_trace(traces: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::new();
    for (tid, t) in traces.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_str(&format!("{} 0x{:016x}", t.kind, t.trace_id))
        ));
        for s in &t.spans {
            let mut args: Vec<String> = vec![
                format!("\"span\":{}", json_str(&format!("0x{:016x}", s.id))),
                format!("\"parent\":{}", json_str(&format!("0x{:016x}", s.parent))),
            ];
            for (k, v) in &s.attrs {
                args.push(format!("{}:{}", json_str(k), json_str(v)));
            }
            events.push(format!(
                "{{\"name\":{},\"cat\":\"stz\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
                json_str(&s.name),
                s.start_ns as f64 / 1e3,
                s.duration_ns as f64 / 1e3,
                args.join(",")
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_collector() -> &'static TraceCollector {
        Box::leak(Box::new(TraceCollector::new(true)))
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "id collision");
        }
    }

    #[test]
    fn spans_nest_and_parent_correctly() {
        let c = test_collector();
        {
            let mut root = c.start("test", "request", None);
            root.attr("k", "v");
            {
                let mut outer = span("outer");
                outer.attr("depth", 1);
                let _inner = span("inner");
            }
        }
        let traces = c.snapshot();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.kind, "test");
        assert!(!t.error);
        let root = t.root().expect("root span");
        assert_eq!(root.name, "request");
        assert_eq!(root.parent, 0);
        assert_eq!(root.attrs, vec![("k".to_string(), "v".to_string())]);
        let outer = t.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = t.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.parent, root.id);
        assert_eq!(inner.parent, outer.id);
        assert!(root.duration_ns >= outer.duration_ns);
    }

    #[test]
    fn span_records_on_panic_unwind() {
        let c = test_collector();
        {
            let mut root = c.start("test", "request", None);
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _doomed = span("doomed");
                panic!("boom");
            }));
            assert!(unwound.is_err());
            root.set_error();
            // The unwind dropped the span AND restored the context: a new
            // span parents under the root again, not under "doomed".
            let _after = span("after");
        }
        let t = &c.snapshot()[0];
        assert!(t.error);
        let doomed = t.spans.iter().find(|s| s.name == "doomed").expect("unwound span recorded");
        let after = t.spans.iter().find(|s| s.name == "after").unwrap();
        let root = t.root().unwrap();
        assert_eq!(doomed.parent, root.id);
        assert_eq!(after.parent, root.id);
    }

    #[test]
    fn context_propagates_across_threads() {
        let c = test_collector();
        {
            let _root = c.start("test", "request", None);
            let outer = span("outer");
            let ctx = current_context().expect("context active");
            let handle = std::thread::spawn(move || {
                assert!(current_context().is_none(), "fresh thread starts clean");
                let _g = install_context(Some(ctx));
                let _worker = span("worker");
                drop(_g);
                assert!(current_context().is_none(), "guard restores on drop");
            });
            handle.join().unwrap();
            drop(outer);
        }
        let t = &c.snapshot()[0];
        let outer = t.spans.iter().find(|s| s.name == "outer").unwrap();
        let worker = t.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, outer.id, "pool-boundary nesting restored");
    }

    #[test]
    fn propagated_link_roots_under_remote_parent() {
        let c = test_collector();
        let (trace_id, remote_span) = (0x1122_3344_5566_7788u64, 0x99AA_BBCC_DDEE_FF00u64);
        drop(c.start("full", "request", Some((trace_id, remote_span))));
        let t = &c.snapshot()[0];
        assert_eq!(t.trace_id, trace_id, "trace id round-trips byte-exactly");
        assert_eq!(t.root().unwrap().parent, remote_span);
    }

    #[test]
    fn off_trace_spans_are_noops() {
        assert!(current_context().is_none());
        let mut s = span("orphan");
        assert!(!s.is_active());
        s.attr("k", "v");
        drop(s);
        let g = test_collector().start("test", "r", None);
        assert!(g.is_active());
    }

    #[test]
    fn tail_sampler_retains_slowest_and_errors() {
        let c = TraceCollector::new(true);
        let mk = |id: u64, dur: u64, error: bool| TraceRecord {
            trace_id: id,
            kind: "full".into(),
            error,
            duration_ns: dur,
            dropped_spans: 0,
            spans: vec![SpanRecord {
                id,
                parent: 0,
                name: "request".into(),
                start_ns: 0,
                duration_ns: dur,
                attrs: vec![],
            }],
        };
        // 100 fast traces, one slow, one fast-but-failed.
        for i in 0..100 {
            c.offer(mk(1000 + i, 10 + i, false));
        }
        c.offer(mk(1, 1_000_000, false));
        c.offer(mk(2, 5, true));
        for _ in 0..50 {
            c.offer(mk(3, 20, false)); // keep pushing the recency ring
        }
        let ids: Vec<u64> = c.snapshot().iter().map(|t| t.trace_id).collect();
        assert!(ids.contains(&1), "slowest trace must be retained: {ids:?}");
        assert!(ids.contains(&2), "error trace must be retained: {ids:?}");
        assert!(
            ids.len() <= RETAIN_SLOWEST + RETAIN_ERRORS + RETAIN_RECENT,
            "retention must stay bounded: {} traces",
            ids.len()
        );
        // Slowest-first ordering.
        assert_eq!(c.snapshot()[0].trace_id, 1);
    }

    #[test]
    fn span_cap_counts_drops() {
        let c = test_collector();
        {
            let _root = c.start("test", "request", None);
            for _ in 0..(MAX_SPANS_PER_TRACE + 10) {
                drop(span("s"));
            }
        }
        let t = &c.snapshot()[0];
        assert_eq!(t.spans.len(), MAX_SPANS_PER_TRACE);
        // +1: the root span itself no longer fits.
        assert_eq!(t.dropped_spans as usize, 11);
    }

    #[test]
    fn disabled_collector_is_inert() {
        let c: &'static TraceCollector = Box::leak(Box::new(TraceCollector::new(false)));
        {
            let g = c.start("test", "request", None);
            assert!(!g.is_active());
            assert!(current_context().is_none(), "no context installed when disabled");
        }
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn waterfall_renders_tree() {
        let c = test_collector();
        {
            let _root = c.start("full", "request", None);
            let _outer = span("decode");
            drop(span("stage:entropy"));
        }
        let text = render_waterfall(&c.snapshot());
        assert!(text.contains("[full]"), "{text}");
        assert!(text.contains("request"), "{text}");
        let decode_at = text.find("  decode").expect("decode indented once");
        let stage_at = text.find("    stage:entropy").expect("stage indented twice");
        assert!(decode_at < stage_at, "{text}");
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let c = test_collector();
        {
            let mut root = c.start("full", "request", None);
            root.attr("peer", "127.0.0.1:1");
            drop(span("de\"code"));
        }
        let json = render_chrome_trace(&c.snapshot());
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("de\\\"code"), "escaping: {json}");
        // Balanced braces outside strings.
        let mut bare = String::new();
        let (mut in_str, mut prev) = (false, ' ');
        for ch in json.chars() {
            if ch == '"' && prev != '\\' {
                in_str = !in_str;
            } else if !in_str {
                bare.push(ch);
            }
            prev = if prev == '\\' && ch == '\\' { ' ' } else { ch };
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(bare.matches(open).count(), bare.matches(close).count(), "{json}");
        }
    }

    #[test]
    fn snapshot_keeps_both_halves_of_a_distributed_trace() {
        let c = test_collector();
        // A client-side root…
        let link = {
            let _client = c.start("client", "fetch", None);
            let ctx = current_context().unwrap();
            (ctx.trace_id(), ctx.span_id())
        };
        // …and a server-side trace adopting the same id via the link.
        {
            let _guard = install_context(None);
            let _server = c.start("full", "request", Some(link));
        }
        let snap = c.snapshot();
        let halves: Vec<&TraceRecord> = snap.iter().filter(|t| t.trace_id == link.0).collect();
        assert_eq!(halves.len(), 2, "both halves retained: {snap:?}");
        let kinds: std::collections::BTreeSet<&str> =
            halves.iter().map(|t| t.kind.as_str()).collect();
        assert_eq!(kinds, ["client", "full"].into_iter().collect());
        // Dedup still collapses one record sitting in several rings.
        assert_eq!(snap.iter().filter(|t| t.kind == "client").count(), 1);
    }

    #[test]
    fn record_span_attaches_measured_interval() {
        let c = test_collector();
        {
            let _root = c.start("test", "request", None);
            let t0 = Instant::now();
            let t1 = t0 + std::time::Duration::from_micros(250);
            record_span("queue_wait", t0, t1, &[("worker", "0".to_string())]);
        }
        let t = &c.snapshot()[0];
        let qw = t.spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(qw.duration_ns, 250_000);
        assert_eq!(qw.parent, t.root().unwrap().id);
        assert_eq!(qw.attrs[0], ("worker".to_string(), "0".to_string()));
    }
}
