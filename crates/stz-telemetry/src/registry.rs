//! The metric registry and its text exposition.

use crate::metrics::{Counter, Gauge, Histogram, LATENCY_FIRST_BOUND_NS};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// One registered metric handle.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(Arc<Counter>),
    /// An up/down value.
    Gauge(Arc<Gauge>),
    /// A log-bucket distribution.
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics, rendered as one text exposition.
///
/// Keys are `name{label="v",…}` strings (labels in the order given at
/// registration). Registration takes a lock; the returned `Arc` handles
/// are lock-free, so hot paths resolve once and record forever. The
/// process-wide registry is [`global`]; unit tests construct their own.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-wide registry: everything the STZ stack instruments lands
/// here, and the server's `METRICS` frame renders it.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry { metrics: Mutex::new(BTreeMap::new()) }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = key(name, labels);
        let mut m = self.lock();
        if let Some(Metric::Counter(c)) = m.get(&key) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        m.insert(key, Metric::Counter(Arc::clone(&c)));
        c
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = key(name, labels);
        let mut m = self.lock();
        if let Some(Metric::Gauge(g)) = m.get(&key) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        m.insert(key, Metric::Gauge(Arc::clone(&g)));
        g
    }

    /// Get or register the histogram `name{labels}` with the given first
    /// bucket bound (ignored when the histogram already exists).
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        first_bound: u64,
    ) -> Arc<Histogram> {
        let key = key(name, labels);
        let mut m = self.lock();
        if let Some(Metric::Histogram(h)) = m.get(&key) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(first_bound));
        m.insert(key, Metric::Histogram(Arc::clone(&h)));
        h
    }

    /// Get or register a latency histogram (`ns` samples, standard
    /// [`LATENCY_FIRST_BOUND_NS`] buckets).
    pub fn latency(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(name, labels, LATENCY_FIRST_BOUND_NS)
    }

    /// Register an existing metric handle under `name{labels}`, replacing
    /// any previous registration of that key (last wins). This is how
    /// per-instance counters — e.g. the decoded-block cache's — are
    /// surfaced: the owning instance keeps the handle, the registry
    /// renders it.
    pub fn register(&self, name: &str, labels: &[(&str, &str)], metric: Metric) {
        self.lock().insert(key(name, labels), metric);
    }

    /// Look up a registered metric by its full `name{labels}` key.
    pub fn get(&self, full_key: &str) -> Option<Metric> {
        self.lock().get(full_key).cloned()
    }

    /// Render the versioned text exposition (see `docs/OBSERVABILITY.md`
    /// for the grammar). Keys render in sorted order; histograms render
    /// as cumulative `_bucket{le="…"}` lines (trailing empty buckets
    /// elided, `le="+Inf"` always present) plus `_count` and `_sum`.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("# stz-telemetry exposition v{}\n", crate::EXPOSITION_VERSION));
        self.render_into(&mut out);
        out
    }

    /// Append this registry's metric lines (no version header) to `out`.
    pub fn render_into(&self, out: &mut String) {
        for (k, metric) in self.lock().iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{k} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{k} {}\n", g.get())),
                Metric::Histogram(h) => render_histogram(out, k, h),
            }
        }
    }
}

/// The canonical `name{label="v",…}` key.
fn key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{name}{{{}}}", pairs.join(","))
}

/// Splice one more label into an existing key (for histogram `le=`).
fn key_with(base: &str, suffix: &str, extra: &str) -> String {
    match base.split_once('{') {
        Some((name, rest)) => format!("{name}{suffix}{{{extra},{rest}"),
        None => format!("{base}{suffix}{{{extra}}}"),
    }
}

fn render_histogram(out: &mut String, base: &str, h: &Histogram) {
    let snap = h.snapshot();
    let last_nonzero = snap.counts.iter().rposition(|&c| c != 0);
    let mut cumulative = 0u64;
    for (i, &c) in snap.counts.iter().enumerate() {
        cumulative += c;
        match snap.bucket_bound(i) {
            // Elide the all-zero tail, but keep bucket boundaries stable:
            // every emitted bucket is cumulative, and +Inf always follows.
            Some(bound) if Some(i) <= last_nonzero => {
                out.push_str(&format!(
                    "{} {cumulative}\n",
                    key_with(base, "_bucket", &format!("le=\"{bound}\""))
                ));
            }
            _ => {}
        }
    }
    out.push_str(&format!("{} {cumulative}\n", key_with(base, "_bucket", "le=\"+Inf\"")));
    out.push_str(&format!("{} {}\n", key_with_suffix(base, "_count"), snap.count()));
    out.push_str(&format!("{} {}\n", key_with_suffix(base, "_sum"), snap.sum));
}

/// Append a suffix to the metric *name* of a key (before any label block).
fn key_with_suffix(base: &str, suffix: &str) -> String {
    match base.split_once('{') {
        Some((name, rest)) => format!("{name}{suffix}{{{rest}"),
        None => format!("{base}{suffix}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("reqs_total", &[("kind", "full")]);
        let b = r.counter("reqs_total", &[("kind", "full")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "one logical counter behind both handles");
        assert_eq!(r.counter("reqs_total", &[("kind", "roi")]).get(), 0, "distinct labels");
    }

    #[test]
    fn register_replaces_last_wins() {
        let r = Registry::new();
        let first = Arc::new(Counter::new());
        first.add(7);
        r.register("cache_hits_total", &[], Metric::Counter(Arc::clone(&first)));
        let second = Arc::new(Counter::new());
        r.register("cache_hits_total", &[], Metric::Counter(Arc::clone(&second)));
        match r.get("cache_hits_total") {
            Some(Metric::Counter(c)) => assert_eq!(c.get(), 0, "second registration wins"),
            other => panic!("expected a counter, got {other:?}"),
        }
    }

    #[test]
    fn registry_concurrency_is_exact() {
        // 8 threads × 10k increments through registry-resolved handles:
        // the total must be exact, whether handles are resolved once or
        // per-iteration.
        let r = Registry::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let r = &r;
                scope.spawn(move || {
                    let hot = r.counter("hammer_total", &[]);
                    for i in 0..10_000u64 {
                        if (i + t) % 2 == 0 {
                            hot.inc();
                        } else {
                            r.counter("hammer_total", &[]).inc();
                        }
                    }
                });
            }
        });
        assert_eq!(r.counter("hammer_total", &[]).get(), 80_000);
    }

    #[test]
    fn exposition_renders_sorted_with_version_header() {
        let r = Registry::new();
        r.counter("b_total", &[]).add(2);
        r.counter("a_total", &[("kind", "x")]).add(1);
        r.gauge("conns", &[]).set(-3);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# stz-telemetry exposition v1");
        assert_eq!(lines[1], "a_total{kind=\"x\"} 1");
        assert_eq!(lines[2], "b_total 2");
        assert_eq!(lines[3], "conns -3");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", &[("kind", "full")], 100);
        h.record(50); // bucket 0 (le=100)
        h.record(150); // bucket 1 (le=200)
        h.record(150);
        let text = r.render();
        assert!(text.contains("lat_ns_bucket{le=\"100\",kind=\"full\"} 1\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"200\",kind=\"full\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\",kind=\"full\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_count{kind=\"full\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_sum{kind=\"full\"} 350\n"), "{text}");
        assert!(!text.contains("le=\"400\""), "trailing empty buckets elided: {text}");
    }
}
