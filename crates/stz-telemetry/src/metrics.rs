//! Metric primitives: counters, gauges, log-bucket histograms, spans.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonically increasing event count.
///
/// All operations are relaxed atomics: increments from any number of
/// threads are exact (never lost), only cross-metric ordering is
/// unspecified.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (for per-instance counters such as
    /// `CountingSource`'s; registered process-wide counters should never
    /// be reset).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (active connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Add `n` (which may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bounded buckets per histogram (one unbounded overflow bucket rides on
/// top). Fixed — like the pool's `MAX_TASKS`, a constant layout keeps
/// snapshots mergeable and the exposition stable.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// First latency-bucket bound in nanoseconds: 50 µs = 0.05 ms, the first
/// bound of `serve_throughput`'s client-side latency histogram, so
/// server-side and client-side latency distributions use identical bucket
/// boundaries (factor 2 apart) and quantiles are comparable within one
/// bucket of resolution.
pub const LATENCY_FIRST_BOUND_NS: u64 = 50_000;

/// A fixed-log-bucket histogram of `u64` samples (nanoseconds, bytes, …).
///
/// Bucket `i` counts samples `v` with `v <= first_bound * 2^i`
/// (`i < HISTOGRAM_BUCKETS`); larger samples saturate into one unbounded
/// overflow bucket. Recording is two relaxed atomic adds — no locks, no
/// allocation — so histograms sit on request hot paths.
#[derive(Debug)]
pub struct Histogram {
    first_bound: u64,
    counts: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram whose smallest bucket bound is `first_bound`
    /// (clamped to ≥ 1).
    pub fn new(first_bound: u64) -> Self {
        Histogram {
            first_bound: first_bound.max(1),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// A histogram with the standard latency bucket layout
    /// ([`LATENCY_FIRST_BOUND_NS`]).
    pub fn new_latency() -> Self {
        Histogram::new(LATENCY_FIRST_BOUND_NS)
    }

    /// The smallest bucket bound.
    pub fn first_bound(&self) -> u64 {
        self.first_bound
    }

    /// The index of the bucket a sample lands in.
    fn bucket_index(&self, v: u64) -> usize {
        // Smallest i with v <= first * 2^i, i.e. ceil(log2(ceil(v/first))).
        let q = v.div_ceil(self.first_bound);
        let idx = if q <= 1 { 0 } else { (u64::BITS - (q - 1).leading_zeros()) as usize };
        idx.min(HISTOGRAM_BUCKETS)
    }

    /// The *inclusive* upper bound of bucket `i`, or `None` for the
    /// overflow bucket.
    pub fn bucket_bound(&self, i: usize) -> Option<u64> {
        (i < HISTOGRAM_BUCKETS).then(|| self.first_bound.saturating_mul(1u64 << i))
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.counts[self.bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record an elapsed duration in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Start a span over this histogram: the guard records the elapsed
    /// nanoseconds when dropped.
    pub fn span(self: &Arc<Self>) -> Span {
        Span::enter(Arc::clone(self))
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            first_bound: self.first_bound,
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets, supporting quantile
/// extraction and merging (e.g. one snapshot per shard or per run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Smallest bucket bound of the source histogram.
    pub first_bound: u64,
    /// Per-bucket sample counts (`HISTOGRAM_BUCKETS` bounded buckets plus
    /// the overflow bucket, non-cumulative).
    pub counts: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The *inclusive* upper bound of bucket `i`, or `None` for the
    /// overflow bucket.
    pub fn bucket_bound(&self, i: usize) -> Option<u64> {
        (i + 1 < self.counts.len()).then(|| self.first_bound.saturating_mul(1u64 << i))
    }

    /// Nearest-rank quantile (`0.0 ..= 1.0`), resolved to the upper bound
    /// of the bucket holding that rank — the same convention
    /// `serve_throughput` uses, so both sides agree within one bucket of
    /// resolution. Samples in the overflow bucket resolve to `u64::MAX`.
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Some(self.bucket_bound(i).unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }

    /// Merge another snapshot into this one (bucket-wise addition). Both
    /// must share the same bucket layout.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.first_bound, other.first_bound,
            "cannot merge histograms with different bucket layouts"
        );
        assert_eq!(self.counts.len(), other.counts.len(), "snapshot bucket counts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

/// RAII span: times a scope and records the elapsed nanoseconds into its
/// histogram on drop. Create with [`Span::enter`], [`Histogram::span`],
/// or the [`span!`](crate::span!) macro.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Start timing now; the drop records into `hist`.
    pub fn enter(hist: Arc<Histogram>) -> Span {
        Span { hist, start: Instant::now() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// Time the enclosing scope into a latency histogram from the [`global`]
/// registry, resolved by name (and optional `"label" => value` pairs):
///
/// ```
/// {
///     let _span = stz_telemetry::span!("stz_core_stage_ns", "stage" => "encode");
///     // ... timed work ...
/// }
/// ```
///
/// Resolution takes the registry lock; on hot paths resolve the
/// [`Histogram`](crate::Histogram) handle once and use
/// [`Histogram::span`](crate::Histogram::span) instead.
///
/// [`global`]: crate::global
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($crate::global().latency($name, &[]))
    };
    ($name:expr, $($k:expr => $v:expr),+ $(,)?) => {
        $crate::Span::enter($crate::global().latency($name, &[$(($k, $v)),+]))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.inc();
        g.add(10);
        g.dec();
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_powers_of_two() {
        let h = Histogram::new(100);
        // Bound of bucket i is 100 * 2^i; bounds are inclusive.
        assert_eq!(h.bucket_index(0), 0);
        assert_eq!(h.bucket_index(1), 0);
        assert_eq!(h.bucket_index(100), 0);
        assert_eq!(h.bucket_index(101), 1);
        assert_eq!(h.bucket_index(200), 1);
        assert_eq!(h.bucket_index(201), 2);
        assert_eq!(h.bucket_index(400), 2);
        assert_eq!(h.bucket_bound(0), Some(100));
        assert_eq!(h.bucket_bound(3), Some(800));
        assert_eq!(h.bucket_bound(HISTOGRAM_BUCKETS), None);
    }

    #[test]
    fn histogram_quantiles_exact_on_synthetic_fill() {
        let h = Histogram::new(1);
        // 100 samples of 1 (bucket 0, bound 1) and 100 of 3 (bucket 2,
        // bound 4): p50 sits exactly at the rank-99..100 boundary.
        for _ in 0..100 {
            h.record(1);
        }
        for _ in 0..100 {
            h.record(3);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 200);
        assert_eq!(s.sum, 100 + 300);
        assert_eq!(s.quantile(0.0), Some(1));
        // rank(0.5) = round(0.5 * 199) = 100 → the 101st sample → bucket 2.
        assert_eq!(s.quantile(0.5), Some(4));
        assert_eq!(s.quantile(0.99), Some(4));
        assert_eq!(s.quantile(1.0), Some(4));
    }

    #[test]
    fn histogram_p99_lands_in_tail_bucket() {
        let h = Histogram::new(1);
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1000); // bucket 10 (bound 1024)
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), Some(1));
        // rank(0.99) = round(0.99 * 99) = 98 → still a 1-sample…
        assert_eq!(s.quantile(0.99), Some(1));
        // …but the max (q=1.0) is the outlier's bucket bound.
        assert_eq!(s.quantile(1.0), Some(1024));
    }

    #[test]
    fn histogram_saturates_at_top_bucket() {
        let h = Histogram::new(1);
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.counts[HISTOGRAM_BUCKETS], 2, "both land in the overflow bucket");
        assert_eq!(s.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn snapshot_merge_adds_bucketwise() {
        let a = Histogram::new(10);
        let b = Histogram::new(10);
        for v in [5, 15, 80] {
            a.record(v);
        }
        for v in [7, 9, 200] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 6);
        assert_eq!(m.sum, 5 + 15 + 80 + 7 + 9 + 200);
        assert_eq!(m.counts[0], 3, "5, 7, 9 share bucket 0");
        // Merged quantiles act on the combined distribution.
        assert_eq!(m.quantile(1.0), Some(320));
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn snapshot_merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(10).snapshot();
        a.merge(&Histogram::new(20).snapshot());
    }

    #[test]
    fn span_records_into_histogram() {
        let h = Arc::new(Histogram::new_latency());
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert!(s.sum >= 1_000_000, "span of ≥1 ms recorded {} ns", s.sum);
    }

    #[test]
    fn concurrent_recording_is_exact() {
        // The 8-thread hammer: N threads × M increments must be exact —
        // no lost updates on counters or histogram buckets.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        let c = Counter::new();
        let h = Histogram::new(1);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let (c, h) = (&c, &h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS * PER_THREAD);
        assert_eq!(h.snapshot().count(), THREADS * PER_THREAD);
    }
}
