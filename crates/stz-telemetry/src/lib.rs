//! Zero-dependency observability for the STZ workspace.
//!
//! Three small, allocation-light facilities, shared by every layer from
//! the rayon shim up to the archive server:
//!
//! * **Metrics** — lock-free [`Counter`]s, [`Gauge`]s, and fixed-log-bucket
//!   [`Histogram`]s (the same geometric bucket scheme the
//!   `serve_throughput` harness uses: factor-2 bounds from a configurable
//!   first bound), with exact p50/p99 extraction from snapshots.
//! * **Spans** — [`Span`] RAII guards that time a scope and feed the
//!   elapsed nanoseconds into a histogram on drop; the [`span!`] macro
//!   resolves the histogram from the [`global`] registry by name + labels.
//! * **Structured logging** — a leveled logger configured by the `STZ_LOG`
//!   environment variable, emitting logfmt-style text or JSON lines to
//!   stderr (see [`Level`] and the `log_warn!`-family macros), with a
//!   [`LogLimiter`] that collapses hot-path floods into one line per
//!   interval carrying a `suppressed=` count.
//! * **Tracing** — request-scoped span trees with deterministic ids,
//!   cross-thread and cross-process context propagation, a tail-sampling
//!   [`trace::TraceCollector`], and waterfall / Chrome-trace exporters
//!   (see the [`trace`] module).
//!
//! Metrics registered in a [`Registry`] are rendered as a versioned,
//! Prometheus-style text exposition (`name{label="v"} value` lines, see
//! [`Registry::render`]); [`expo`] parses that text back into samples so
//! clients, benches, and tests share one grammar.
//!
//! The naming contract, exposition grammar, span conventions, and
//! `STZ_LOG` syntax are documented in `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]

mod expo_mod;
mod logging;
mod metrics;
mod registry;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Span, HISTOGRAM_BUCKETS, LATENCY_FIRST_BOUND_NS,
};
pub use registry::{global, Metric, Registry};

pub use logging::{log_enabled, log_record, Level, LogLimiter};

/// Exposition text parsing (the inverse of [`Registry::render`]).
pub mod expo {
    pub use crate::expo_mod::{histogram_quantile, parse, sample_value, Sample};
}

/// Version of the text exposition grammar. The first line of every
/// rendered exposition is `# stz-telemetry exposition v<N>`, and the
/// `METRICS_OK` wire payload carries the same byte so consumers can
/// reject text they do not understand.
pub const EXPOSITION_VERSION: u8 = 1;
