//! Parsing the text exposition back into samples.
//!
//! The grammar is the mirror of [`Registry::render`](crate::Registry::render):
//! `#`-prefixed comment lines, then one `key value` pair per line where
//! `key` is `name` or `name{label="v",…}` and `value` parses as a number.
//! The parser is shared by the CLI's `stz stats` table, the
//! `serve_throughput --metrics` harness, and the wire-protocol tests, so
//! renderer and consumers cannot drift.

/// One parsed metric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (without the label block).
    pub name: String,
    /// Labels in exposition order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The full `name{label="v",…}` key this sample was parsed from.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

/// Parse an exposition document into samples. Comment lines (`#`) and
/// blank lines are skipped; any other malformed line is an error naming
/// the offending line — a hostile or truncated exposition must never
/// parse silently.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("exposition line {}: no value in {line:?}", idx + 1))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v.parse().map_err(|_| format!("exposition line {}: bad value {v:?}", idx + 1))?,
        };
        let (name, labels) =
            parse_key(key.trim_end()).map_err(|e| format!("exposition line {}: {e}", idx + 1))?;
        out.push(Sample { name, labels, value });
    }
    Ok(out)
}

/// Split `name{label="v",…}` into name + labels.
fn parse_key(key: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some((name, rest)) = key.split_once('{') else {
        if key.is_empty() || key.contains('}') {
            return Err(format!("bad metric key {key:?}"));
        }
        return Ok((key.to_string(), Vec::new()));
    };
    let body = rest.strip_suffix('}').ok_or_else(|| format!("unclosed label block in {key:?}"))?;
    let mut labels = Vec::new();
    for pair in body.split(',') {
        let (k, v) = pair.split_once('=').ok_or_else(|| format!("bad label pair {pair:?}"))?;
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted label value in {pair:?}"))?;
        labels.push((k.to_string(), v.to_string()));
    }
    if name.is_empty() {
        return Err(format!("empty metric name in {key:?}"));
    }
    Ok((name.to_string(), labels))
}

/// The value of the sample named `name` whose labels include all of
/// `with_labels`.
pub fn sample_value(samples: &[Sample], name: &str, with_labels: &[(&str, &str)]) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && with_labels.iter().all(|(k, v)| s.label(k) == Some(v)))
        .map(|s| s.value)
}

/// Nearest-rank quantile of an exposed histogram: reads the cumulative
/// `<name>_bucket{…,le="…"}` samples whose labels include `with_labels`
/// and returns the `le` bound of the bucket holding the rank (`+Inf`
/// resolves to [`f64::INFINITY`]). `None` when no such histogram exists
/// or it is empty.
pub fn histogram_quantile(
    samples: &[Sample],
    name: &str,
    with_labels: &[(&str, &str)],
    q: f64,
) -> Option<f64> {
    let bucket_name = format!("{name}_bucket");
    let mut buckets: Vec<(f64, u64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name && with_labels.iter().all(|(k, v)| s.label(k) == Some(v)))
        .filter_map(|s| {
            let le = match s.label("le")? {
                "+Inf" => f64::INFINITY,
                v => v.parse().ok()?,
            };
            Some((le, s.value as u64))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last().map(|&(_, c)| c)?;
    if total == 0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
    buckets.iter().find(|&&(_, cumulative)| cumulative > rank).map(|&(le, _)| le)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn render_parse_roundtrip() {
        let r = Registry::new();
        r.counter("reqs_total", &[("kind", "full")]).add(42);
        r.gauge("conns", &[]).set(3);
        let h = r.histogram("lat_ns", &[("kind", "full")], 100);
        h.record(80);
        h.record(150);

        let samples = parse(&r.render()).expect("own exposition parses");
        assert_eq!(sample_value(&samples, "reqs_total", &[("kind", "full")]), Some(42.0));
        assert_eq!(sample_value(&samples, "conns", &[]), Some(3.0));
        assert_eq!(sample_value(&samples, "lat_ns_count", &[("kind", "full")]), Some(2.0));
        assert_eq!(sample_value(&samples, "lat_ns_sum", &[("kind", "full")]), Some(230.0));
        // Quantiles recovered from the text match the snapshot's.
        assert_eq!(histogram_quantile(&samples, "lat_ns", &[("kind", "full")], 0.0), Some(100.0));
        assert_eq!(histogram_quantile(&samples, "lat_ns", &[("kind", "full")], 1.0), Some(200.0));
        assert_eq!(h.snapshot().quantile(1.0), Some(200));
    }

    #[test]
    fn sample_key_roundtrips() {
        let text = "a_total{x=\"1\",y=\"2\"} 5\nplain 7\n";
        let samples = parse(text).unwrap();
        assert_eq!(samples[0].key(), "a_total{x=\"1\",y=\"2\"}");
        assert_eq!(samples[0].label("y"), Some("2"));
        assert_eq!(samples[1].key(), "plain");
    }

    #[test]
    fn hostile_text_is_rejected_not_misparsed() {
        for bad in [
            "no_value_here",
            "name not-a-number",
            "name{unclosed=\"v\" 1",
            "name{k=unquoted} 1",
            "name{k} 1",
            "{\"json\":\"not exposition\"} 1",
            " 5",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Comments, blanks, and ±Inf are fine.
        let ok = parse("# comment\n\nh_bucket{le=\"+Inf\"} 3\nneg -Inf\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].value, 3.0);
        assert!(ok[1].value.is_infinite());
    }

    #[test]
    fn quantile_of_missing_or_empty_histogram_is_none() {
        let samples = parse("h_bucket{le=\"+Inf\"} 0\n").unwrap();
        assert_eq!(histogram_quantile(&samples, "h", &[], 0.5), None);
        assert_eq!(histogram_quantile(&samples, "absent", &[], 0.5), None);
    }
}
