//! Raw binary field I/O (the flat little-endian dumps used by the SZ/ZFP
//! ecosystems and by this repo's CLI).

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use stz_field::{Dims, Field, Scalar};

/// Read a flat little-endian array of `dims.len()` scalars from `path`.
pub fn read_raw<T: Scalar>(path: &Path, dims: Dims) -> io::Result<Field<T>> {
    let expected = dims.len() * T::BYTES;
    let mut file = fs::File::open(path)?;
    let mut bytes = Vec::with_capacity(expected);
    file.read_to_end(&mut bytes)?;
    if bytes.len() != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{} holds {} bytes, dims {dims} require {expected}",
                path.display(),
                bytes.len()
            ),
        ));
    }
    let data: Vec<T> = bytes.chunks_exact(T::BYTES).map(T::read_exact).collect();
    Ok(Field::from_vec(dims, data))
}

/// Write a field as a flat little-endian array.
pub fn write_raw<T: Scalar>(path: &Path, field: &Field<T>) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(field.nbytes());
    for &v in field.as_slice() {
        v.write_exact(&mut bytes);
    }
    let mut file = fs::File::create(path)?;
    file.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f32_and_f64() {
        let dir = std::env::temp_dir().join("stz_io_test");
        fs::create_dir_all(&dir).unwrap();

        let f32_field = Field::from_fn(Dims::d3(4, 5, 6), |z, y, x| (z * 30 + y * 6 + x) as f32);
        let p32 = dir.join("a.f32");
        write_raw(&p32, &f32_field).unwrap();
        assert_eq!(read_raw::<f32>(&p32, f32_field.dims()).unwrap(), f32_field);

        let f64_field = Field::from_fn(Dims::d2(7, 3), |_, y, x| (y as f64).powf(x as f64 + 0.5));
        let p64 = dir.join("b.f64");
        write_raw(&p64, &f64_field).unwrap();
        assert_eq!(read_raw::<f64>(&p64, f64_field.dims()).unwrap(), f64_field);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_size_rejected() {
        let dir = std::env::temp_dir().join("stz_io_test2");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("short.f32");
        fs::write(&p, [0u8; 10]).unwrap();
        assert!(read_raw::<f32>(&p, Dims::d1(100)).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
