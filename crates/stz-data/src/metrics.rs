//! Quality metrics used throughout the paper's evaluation.

use stz_field::{Field, Scalar};

/// Mean squared error between an original and a reconstruction.
pub fn mse<T: Scalar>(orig: &Field<T>, recon: &Field<T>) -> f64 {
    assert_eq!(orig.dims(), recon.dims(), "field shapes differ");
    let n = orig.len() as f64;
    orig.as_slice()
        .iter()
        .zip(recon.as_slice())
        .map(|(&a, &b)| {
            let d = a.to_f64() - b.to_f64();
            d * d
        })
        .sum::<f64>()
        / n
}

/// Maximum point-wise absolute error (the quantity the error bound
/// guarantees).
pub fn max_abs_error<T: Scalar>(orig: &Field<T>, recon: &Field<T>) -> f64 {
    assert_eq!(orig.dims(), recon.dims(), "field shapes differ");
    orig.as_slice()
        .iter()
        .zip(recon.as_slice())
        .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
        .fold(0.0, f64::max)
}

/// Peak signal-to-noise ratio in dB, normalized by the original's value
/// range (the convention of the SZ/ZFP literature and the paper's Figs. 5
/// and 11): `PSNR = 20·log10(range) − 10·log10(MSE)`.
pub fn psnr<T: Scalar>(orig: &Field<T>, recon: &Field<T>) -> f64 {
    let (lo, hi) = orig.value_range();
    let range = hi - lo;
    let m = mse(orig, recon);
    if m == 0.0 {
        f64::INFINITY
    } else if range == 0.0 {
        0.0
    } else {
        20.0 * range.log10() - 10.0 * m.log10()
    }
}

/// Compression ratio: original bytes / compressed bytes.
pub fn compression_ratio<T: Scalar>(orig: &Field<T>, compressed_len: usize) -> f64 {
    orig.nbytes() as f64 / compressed_len as f64
}

/// Bit rate: compressed bits per scalar value.
pub fn bitrate<T: Scalar>(orig: &Field<T>, compressed_len: usize) -> f64 {
    compressed_len as f64 * 8.0 / orig.len() as f64
}

/// Windowed structural similarity (SSIM), the perceptual metric of the
/// paper's visual comparisons (Figs. 3, 12, 13).
///
/// Uses box windows of up to 8 points per axis with stride 4 (dense enough
/// for stable statistics on volumetric data) and the standard constants
/// `C1 = (0.01·L)²`, `C2 = (0.03·L)²` with `L` the original's value range.
/// Works on 2-D slices and full 3-D volumes alike.
pub fn ssim<T: Scalar>(orig: &Field<T>, recon: &Field<T>) -> f64 {
    assert_eq!(orig.dims(), recon.dims(), "field shapes differ");
    let dims = orig.dims();
    let (lo, hi) = orig.value_range();
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    let c1 = (0.01 * range).powi(2);
    let c2 = (0.03 * range).powi(2);

    let win = 8usize;
    let stride = 4usize;
    let wz = win.min(dims.nz());
    let wy = win.min(dims.ny());
    let wx = win.min(dims.nx());

    let mut total = 0.0;
    let mut count = 0usize;
    let mut z0 = 0;
    loop {
        let mut y0 = 0;
        loop {
            let mut x0 = 0;
            loop {
                total += window_ssim(orig, recon, [z0, y0, x0], [wz, wy, wx], c1, c2);
                count += 1;
                if x0 + wx >= dims.nx() {
                    break;
                }
                x0 = (x0 + stride).min(dims.nx() - wx);
            }
            if y0 + wy >= dims.ny() {
                break;
            }
            y0 = (y0 + stride).min(dims.ny() - wy);
        }
        if z0 + wz >= dims.nz() {
            break;
        }
        z0 = (z0 + stride).min(dims.nz() - wz);
    }
    total / count as f64
}

fn window_ssim<T: Scalar>(
    a: &Field<T>,
    b: &Field<T>,
    origin: [usize; 3],
    win: [usize; 3],
    c1: f64,
    c2: f64,
) -> f64 {
    let n = (win[0] * win[1] * win[2]) as f64;
    let (mut sa, mut sb) = (0.0, 0.0);
    for z in origin[0]..origin[0] + win[0] {
        for y in origin[1]..origin[1] + win[1] {
            for x in origin[2]..origin[2] + win[2] {
                sa += a.get(z, y, x).to_f64();
                sb += b.get(z, y, x).to_f64();
            }
        }
    }
    let (ma, mb) = (sa / n, sb / n);
    let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
    for z in origin[0]..origin[0] + win[0] {
        for y in origin[1]..origin[1] + win[1] {
            for x in origin[2]..origin[2] + win[2] {
                let da = a.get(z, y, x).to_f64() - ma;
                let db = b.get(z, y, x).to_f64() - mb;
                va += da * da;
                vb += db * db;
                cov += da * db;
            }
        }
    }
    va /= n;
    vb /= n;
    cov /= n;
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

/// PSNR/SSIM/CR summary for benchmark tables.
#[derive(Debug, Clone, Copy)]
pub struct QualitySummary {
    pub psnr: f64,
    pub ssim: f64,
    pub max_err: f64,
    pub compression_ratio: f64,
    pub bitrate: f64,
}

/// Compute the full quality summary for a (original, reconstruction,
/// compressed size) triple.
pub fn summarize<T: Scalar>(
    orig: &Field<T>,
    recon: &Field<T>,
    compressed_len: usize,
) -> QualitySummary {
    QualitySummary {
        psnr: psnr(orig, recon),
        ssim: ssim(orig, recon),
        max_err: max_abs_error(orig, recon),
        compression_ratio: compression_ratio(orig, compressed_len),
        bitrate: bitrate(orig, compressed_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stz_field::Dims;

    fn base() -> Field<f32> {
        Field::from_fn(Dims::d3(16, 16, 16), |z, y, x| {
            ((z as f32) * 0.3).sin() + ((y as f32) * 0.2).cos() + x as f32 * 0.05
        })
    }

    #[test]
    fn identical_fields_are_perfect() {
        let f = base();
        assert_eq!(mse(&f, &f), 0.0);
        assert_eq!(max_abs_error(&f, &f), 0.0);
        assert!(psnr(&f, &f).is_infinite());
        assert!((ssim(&f, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let f = base();
        let mk = |amp: f32| {
            Field::from_fn(f.dims(), |z, y, x| {
                let s = ((z * 131 + y * 17 + x) % 7) as f32 / 7.0 - 0.5;
                f.get(z, y, x) + amp * s
            })
        };
        let small = psnr(&f, &mk(0.001));
        let large = psnr(&f, &mk(0.1));
        assert!(small > large + 20.0, "small {small} large {large}");
    }

    #[test]
    fn ssim_penalizes_structure_loss() {
        let f = base();
        // Heavy blur = structure loss.
        let blurred = Field::from_fn(f.dims(), |_, _, _| 0.5f32);
        let s = ssim(&f, &blurred);
        assert!(s < 0.7, "blurred SSIM {s}");
        // Small noise keeps SSIM high.
        let noisy = Field::from_fn(f.dims(), |z, y, x| {
            f.get(z, y, x) + (((z + y + x) % 3) as f32 - 1.0) * 1e-4
        });
        assert!(ssim(&f, &noisy) > 0.99);
    }

    #[test]
    fn ssim_on_2d_slice() {
        let f = Field::from_fn(Dims::d2(32, 32), |_, y, x| ((y * x) as f32).sqrt());
        assert!((ssim(&f, &f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_err_and_mse_consistent() {
        let f = base();
        let shifted = f.map(|v| v + 0.25);
        assert!((max_abs_error(&f, &shifted) - 0.25).abs() < 1e-6);
        assert!((mse(&f, &shifted) - 0.0625).abs() < 1e-6);
    }

    #[test]
    fn cr_and_bitrate() {
        let f = base();
        assert!((compression_ratio(&f, f.nbytes() / 8) - 8.0).abs() < 1e-12);
        assert!((bitrate(&f, f.nbytes()) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn psnr_matches_hand_computation() {
        // range = 1, mse = 0.01 -> psnr = -10·log10(0.01) = 20.
        let a = Field::from_vec(Dims::d1(2), vec![0.0f32, 1.0]);
        let b = Field::from_vec(Dims::d1(2), vec![0.1f32, 1.1]);
        assert!((psnr(&a, &b) - 20.0).abs() < 1e-4);
    }
}
