//! Synthetic scientific datasets and quality metrics for the STZ evaluation.
//!
//! The paper evaluates on four simulation snapshots (Table 2): Nyx
//! (cosmology, FP32, 512³), WarpX (accelerator physics, FP64, 256²×2048),
//! Magnetic Reconnection (plasma physics, FP32, 512³) and Miranda
//! (turbulence, FP32, 1024³). Those snapshots are not redistributable, so
//! this crate provides **deterministic synthetic analogues** with the same
//! statistical character — the spectral content and feature morphology that
//! drive compressor behaviour (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`synth::nyx_like`] — lognormal density field with over-density halos;
//! * [`synth::warpx_like`] — FP64 laser-wakefield wave packets in an
//!   elongated domain;
//! * [`synth::magrec_like`] — current sheets with tearing-mode islands;
//! * [`synth::miranda_like`] — Rayleigh–Taylor mixing layers with
//!   multi-octave turbulence.
//!
//! [`metrics`] implements the paper's quality measures: PSNR (value-range
//! normalized), SSIM (windowed, as in §4.2's image-space comparisons),
//! maximum point-wise error, and compression-ratio accounting.

pub mod catalog;
pub mod io;
pub mod metrics;
pub mod synth;

pub use catalog::{Dataset, DatasetField};
