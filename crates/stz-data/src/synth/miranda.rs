//! Miranda-like turbulence field (FP32).
//!
//! The Miranda dataset (paper Fig. 13, Table 4) is a density snapshot of a
//! Rayleigh–Taylor mixing simulation: two fluids of different density
//! separated by an unstable interface that develops multi-scale turbulent
//! structure. The generator layers a perturbed tanh interface with
//! multi-octave fBm "turbulence" whose intensity peaks inside the mixing
//! zone — smooth large-scale structure with broadband small-scale detail,
//! exactly the regime where wavelet and interpolation compressors diverge.

use super::noise::fbm;
use stz_field::{Dims, Field};

/// Generate a Miranda-like FP32 density field.
pub fn miranda_like(dims: Dims, seed: u64) -> Field<f32> {
    let (nz, ny, nx) = (dims.nz() as f64, dims.ny() as f64, dims.nx() as f64);
    let scale = 16.0 / nx.max(ny).max(nz);
    // Densities of the two fluids.
    let (rho_heavy, rho_light) = (3.0, 1.0);
    let interface_width = (nz / 24.0).max(1.0);

    Field::from_fn(dims, |z, y, x| {
        let (zf, yf, xf) = (z as f64, y as f64, x as f64);
        // Perturbed interface height: long-wavelength bubbles and spikes.
        let perturb = 0.18 * nz * fbm(seed, 0.0, yf * scale * 0.8, xf * scale * 0.8, 3, 0.6);
        let height = nz * 0.5 + perturb;
        let s = ((zf - height) / interface_width).tanh();
        let base = 0.5 * (rho_heavy + rho_light) + 0.5 * (rho_heavy - rho_light) * s;
        // Turbulence concentrated in the mixing layer.
        let mix = (1.0 - s * s).max(0.0);
        let turb = 0.35
            * mix
            * fbm(
                seed.wrapping_add(1),
                zf * scale * 3.0,
                yf * scale * 3.0,
                xf * scale * 3.0,
                5,
                0.55,
            );
        // Weak background acoustics everywhere.
        let acoustic = 0.02 * fbm(seed.wrapping_add(2), zf * scale, yf * scale, xf * scale, 2, 0.5);
        (base + turb + acoustic) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = miranda_like(Dims::d3(16, 16, 16), 9);
        assert_eq!(a, miranda_like(Dims::d3(16, 16, 16), 9));
    }

    #[test]
    fn two_fluid_layers() {
        let f = miranda_like(Dims::d3(48, 32, 32), 2);
        // Bottom is light fluid (~1), top is heavy (~3).
        let bottom = f.get(2, 16, 16);
        let top = f.get(45, 16, 16);
        assert!(bottom < 1.6, "bottom {bottom}");
        assert!(top > 2.4, "top {top}");
    }

    #[test]
    fn turbulence_concentrated_at_interface() {
        let f = miranda_like(Dims::d3(64, 32, 32), 4);
        // Local variance near the mid-plane exceeds variance near the walls.
        let var_z = |z0: usize| {
            let mut vals = Vec::new();
            for z in z0..z0 + 4 {
                for y in 0..32 {
                    for x in 0..32 {
                        vals.push(f.get(z, y, x) as f64);
                    }
                }
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64
        };
        assert!(var_z(30) > var_z(2), "mid {} wall {}", var_z(30), var_z(2));
    }

    #[test]
    fn density_range_physical() {
        let f = miranda_like(Dims::d3(32, 32, 32), 11);
        let (lo, hi) = f.value_range();
        assert!(lo > 0.3 && hi < 4.0, "range [{lo}, {hi}]");
    }
}
