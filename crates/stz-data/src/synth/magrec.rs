//! Magnetic-reconnection-like plasma field (FP32).
//!
//! The Magnetic Reconnection dataset (Guo et al., PRL 2014; paper Figs. 11,
//! 12) captures relativistic reconnection in a Harris current sheet: an
//! anti-parallel magnetic field reversing across thin sheets, broken up by
//! tearing-mode plasmoids (magnetic islands), with sharp gradients at the
//! sheets and broadband fluctuations from the reconnection outflows.

use super::noise::fbm;
use stz_field::{Dims, Field};

/// Generate a Magnetic-Reconnection-like FP32 field (the reconnecting
/// in-plane field component).
pub fn magrec_like(dims: Dims, seed: u64) -> Field<f32> {
    let (nz, ny, nx) = (dims.nz() as f64, dims.ny() as f64, dims.nx() as f64);
    let scale = 20.0 / nx.max(ny).max(nz);
    // Two Harris sheets (periodic-like double sheet, as in the standard
    // reconnection setup).
    let y1 = ny * 0.25;
    let y2 = ny * 0.75;
    let lambda = (ny / 32.0).max(1.0); // sheet half-thickness
    let k_island = 2.0 * std::f64::consts::PI / (nx / 3.0).max(4.0);

    Field::from_fn(dims, |z, y, x| {
        let (zf, yf, xf) = (z as f64, y as f64, x as f64);
        // Double Harris sheet: B reverses at each sheet.
        let b0 = ((yf - y1) / lambda).tanh() - ((yf - y2) / lambda).tanh() - 1.0;
        // Tearing islands: perturbation localized at the sheets.
        let sech2 = |u: f64| {
            let c = u.cosh();
            1.0 / (c * c)
        };
        let island = 0.35
            * (k_island * xf + 0.3 * zf * scale).cos()
            * (sech2((yf - y1) / (2.0 * lambda)) + sech2((yf - y2) / (2.0 * lambda)));
        // Reconnection-driven turbulence, stronger near the sheets.
        let sheet_weight = sech2((yf - y1) / (4.0 * lambda)) + sech2((yf - y2) / (4.0 * lambda));
        let turb = (0.02 + 0.15 * sheet_weight)
            * fbm(seed, zf * scale * 2.0, yf * scale * 2.0, xf * scale * 2.0, 4, 0.55);
        (b0 + island + turb) as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = magrec_like(Dims::d3(16, 32, 32), 3);
        assert_eq!(a, magrec_like(Dims::d3(16, 32, 32), 3));
    }

    #[test]
    fn field_reverses_across_sheet() {
        let f = magrec_like(Dims::d3(8, 64, 64), 1);
        // Below the first sheet (y < 16) the field ~ -1... above it ~ +1
        // until the second sheet. Compare signs well away from sheets.
        let below = f.get(4, 2, 32);
        let mid = f.get(4, 32, 32);
        let above = f.get(4, 62, 32);
        assert!(below < 0.0, "below {below}");
        assert!(mid > 0.0, "mid {mid}");
        assert!(above < 0.0, "above {above}");
    }

    #[test]
    fn gradients_sharp_at_sheets() {
        let f = magrec_like(Dims::d3(8, 64, 64), 2);
        // |d/dy| near a sheet (y=16) much larger than at mid-channel.
        let g_sheet = (f.get(4, 17, 20) - f.get(4, 15, 20)).abs();
        let g_mid = (f.get(4, 33, 20) - f.get(4, 31, 20)).abs();
        assert!(g_sheet > 3.0 * g_mid, "sheet {g_sheet} vs mid {g_mid}");
    }

    #[test]
    fn bounded_amplitude() {
        let f = magrec_like(Dims::d3(16, 48, 48), 6);
        let (lo, hi) = f.value_range();
        assert!(lo > -2.5 && hi < 2.5, "range [{lo}, {hi}]");
    }
}
