//! Deterministic lattice value noise and fractal Brownian motion.
//!
//! All generators in this crate are built on a splitmix-style integer hash,
//! so a `(dims, seed)` pair always produces the identical field on every
//! platform — benchmark workloads are exactly reproducible.

/// SplitMix64 finalizer: decorrelates lattice coordinates + seed.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a 3-D lattice point to a uniform value in `[-1, 1]`.
#[inline]
pub fn lattice_value(seed: u64, z: i64, y: i64, x: i64) -> f64 {
    let h = hash64(
        seed ^ hash64(z as u64).wrapping_mul(3)
            ^ hash64(y as u64).wrapping_mul(5)
            ^ hash64(x as u64).wrapping_mul(7),
    );
    (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
}

/// Quintic smoothstep (C² continuous — keeps noise derivatives smooth).
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// Smooth value noise at a continuous 3-D position, in `[-1, 1]`.
pub fn value_noise(seed: u64, z: f64, y: f64, x: f64) -> f64 {
    let (z0, y0, x0) = (z.floor(), y.floor(), x.floor());
    let (fz, fy, fx) = (fade(z - z0), fade(y - y0), fade(x - x0));
    let (iz, iy, ix) = (z0 as i64, y0 as i64, x0 as i64);
    let mut acc = 0.0;
    for dz in 0..2i64 {
        let wz = if dz == 1 { fz } else { 1.0 - fz };
        for dy in 0..2i64 {
            let wy = if dy == 1 { fy } else { 1.0 - fy };
            for dx in 0..2i64 {
                let wx = if dx == 1 { fx } else { 1.0 - fx };
                acc += wz * wy * wx * lattice_value(seed, iz + dz, iy + dy, ix + dx);
            }
        }
    }
    acc
}

/// Fractal Brownian motion: `octaves` layers of value noise with lacunarity
/// 2 and the given `persistence`, normalized to roughly `[-1, 1]`.
pub fn fbm(seed: u64, z: f64, y: f64, x: f64, octaves: u32, persistence: f64) -> f64 {
    let mut amp = 1.0;
    let mut freq = 1.0;
    let mut acc = 0.0;
    let mut norm = 0.0;
    for o in 0..octaves {
        acc += amp
            * value_noise(seed.wrapping_add(o as u64 * 0x5bd1_e995), z * freq, y * freq, x * freq);
        norm += amp;
        amp *= persistence;
        freq *= 2.0;
    }
    acc / norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(42), hash64(43));
        // Low bits should differ across consecutive inputs.
        let a = hash64(1) & 0xFFFF;
        let b = hash64(2) & 0xFFFF;
        assert_ne!(a, b);
    }

    #[test]
    fn lattice_values_in_range() {
        for i in 0..1000i64 {
            let v = lattice_value(7, i, i * 3, i * 5);
            assert!((-1.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn value_noise_interpolates_lattice() {
        // At integer positions, noise equals the lattice value.
        let v = value_noise(9, 3.0, 4.0, 5.0);
        assert!((v - lattice_value(9, 3, 4, 5)).abs() < 1e-12);
    }

    #[test]
    fn value_noise_is_continuous() {
        // Small steps produce small changes.
        let mut prev = value_noise(1, 0.0, 0.0, 0.0);
        for i in 1..200 {
            let v = value_noise(1, 0.0, 0.0, i as f64 * 0.01);
            assert!((v - prev).abs() < 0.1, "jump at {i}");
            prev = v;
        }
    }

    #[test]
    fn fbm_in_range_and_rougher_with_octaves() {
        let mut vals1 = Vec::new();
        let mut vals5 = Vec::new();
        for i in 0..500 {
            let t = i as f64 * 0.05;
            vals1.push(fbm(3, t, t * 0.7, t * 1.3, 1, 0.5));
            vals5.push(fbm(3, t, t * 0.7, t * 1.3, 5, 0.5));
        }
        assert!(vals1.iter().all(|v| v.abs() <= 1.0 + 1e-9));
        assert!(vals5.iter().all(|v| v.abs() <= 1.0 + 1e-9));
        // More octaves -> more small-scale variation.
        let tv = |vs: &[f64]| -> f64 { vs.windows(2).map(|w| (w[1] - w[0]).abs()).sum() };
        assert!(tv(&vals5) > tv(&vals1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = value_noise(1, 1.5, 2.5, 3.5);
        let b = value_noise(2, 1.5, 2.5, 3.5);
        assert_ne!(a, b);
    }
}
