//! Synthetic dataset generators (analogues of the paper's Table 2).

pub mod noise;

mod magrec;
mod miranda;
mod nyx;
mod warpx;

pub use magrec::magrec_like;
pub use miranda::miranda_like;
pub use nyx::nyx_like;
pub use warpx::warpx_like;
