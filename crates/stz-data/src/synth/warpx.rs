//! WarpX-like laser-wakefield field (FP64, elongated domain).
//!
//! The WarpX dataset (2022 Gordon Bell winner; paper Figs. 1, 11, 12) is an
//! electric-field snapshot of a laser-plasma accelerator: a short intense
//! laser pulse and its trailing plasma wakefield oscillations inside a long
//! propagation axis, near-vacuum elsewhere. The generator reproduces the
//! structure the compressors see: a Gaussian-enveloped carrier wave packet,
//! periodic wake buckets behind it, and a weak broadband plasma noise floor.

use super::noise::fbm;
use stz_field::{Dims, Field};

/// Generate a WarpX-like FP64 field. The long axis is `x` (use e.g.
/// `Dims::d3(256, 256, 2048)` scaled down for the paper's shape).
pub fn warpx_like(dims: Dims, seed: u64) -> Field<f64> {
    let (nz, ny, nx) = (dims.nz() as f64, dims.ny() as f64, dims.nx() as f64);
    // Pulse center along x, transverse center of the channel.
    let x0 = nx * 0.7;
    let (zc, yc) = (nz / 2.0, ny / 2.0);
    let w_trans = (ny.min(nz.max(2.0)) / 6.0).max(1.5); // transverse waist
    let l_pulse = nx / 24.0; // pulse length
    let k_laser = 2.0 * std::f64::consts::PI / (nx / 128.0).max(4.0);
    let k_wake = k_laser / 12.0;
    let noise_scale = 12.0 / nx;

    Field::from_fn(dims, |z, y, x| {
        let (zf, yf, xf) = (z as f64, y as f64, x as f64);
        let r2t = ((zf - zc) / w_trans).powi(2) + ((yf - yc) / w_trans).powi(2);
        let trans = (-r2t).exp();
        // Laser pulse: carrier under a Gaussian envelope.
        let pulse_env = (-((xf - x0) / l_pulse).powi(2)).exp();
        let laser = 3.2e10 * pulse_env * (k_laser * xf).sin();
        // Wakefield buckets trailing the pulse (x < x0).
        let behind = if xf < x0 {
            let decay = (-(x0 - xf) / (nx * 0.45)).exp();
            6.0e9 * decay * (k_wake * (x0 - xf)).sin()
        } else {
            0.0
        };
        let plasma_noise = 2.0e8
            * fbm(seed, zf * noise_scale * 8.0, yf * noise_scale * 8.0, xf * noise_scale, 4, 0.5);
        trans * (laser + behind) + plasma_noise * trans.sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Field<f64> {
        warpx_like(Dims::d3(24, 24, 160), 5)
    }

    #[test]
    fn deterministic() {
        assert_eq!(small(), warpx_like(Dims::d3(24, 24, 160), 5));
    }

    #[test]
    fn pulse_dominates_field() {
        let f = small();
        let (lo, hi) = f.value_range();
        let amp = hi.max(-lo);
        assert!(amp > 1e10, "laser amplitude {amp}");
        // Field near the transverse boundary is orders weaker.
        let edge = f.get(0, 0, 112).abs();
        assert!(edge < amp * 1e-3, "edge {edge} vs amp {amp}");
    }

    #[test]
    fn oscillatory_along_x() {
        let f = small();
        // Count sign changes along the axis through the pulse.
        let (z, y) = (12, 12);
        let mut changes = 0;
        for x in 1..160 {
            if (f.get(z, y, x) > 0.0) != (f.get(z, y, x - 1) > 0.0) {
                changes += 1;
            }
        }
        assert!(changes > 10, "only {changes} sign changes");
    }

    #[test]
    fn elongated_default_shape_supported() {
        let f = warpx_like(Dims::d3(8, 8, 256), 1);
        assert_eq!(f.dims().as_array(), [8, 8, 256]);
    }
}
