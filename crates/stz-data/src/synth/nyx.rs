//! Nyx-like cosmology field: lognormal baryon density with halos.
//!
//! The Nyx "baryon density" field the paper uses (Figs. 3, 5, 10, 11) is a
//! lognormal-distributed density with a vast dynamic range: a smooth cosmic
//! web plus compact over-density halos reaching thousands of times the mean
//! (halo threshold 81.66 in §3.3). This generator reproduces that
//! morphology: `exp(σ·fbm)` background with deterministic NFW-ish halo
//! spikes sprinkled by a hashed Poisson process.

use super::noise::{fbm, hash64};
use stz_field::{Dims, Field};

/// Halo influence radius in grid units.
const HALO_RADIUS: f64 = 8.0;

/// Generate a Nyx-like FP32 density field.
pub fn nyx_like(dims: Dims, seed: u64) -> Field<f32> {
    let scale = 24.0 / dims.nx().max(dims.ny()).max(dims.nz()) as f64;
    // Lognormal cosmic web background.
    let mut field = Field::from_fn(dims, |z, y, x| {
        let web = fbm(seed, z as f64 * scale, y as f64 * scale, x as f64 * scale, 5, 0.55);
        (1.8 * web).exp() as f32
    });

    // Deterministic halo catalogue: ~1 halo per 16³ region, added locally so
    // generation stays O(points + halos·radius³).
    let n_halos = (dims.len() / 32_768).clamp(2, 8_192);
    for i in 0..n_halos {
        let h = hash64(seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let hz = (h & 0xFFFF) as f64 / 65536.0 * dims.nz() as f64;
        let hy = ((h >> 16) & 0xFFFF) as f64 / 65536.0 * dims.ny() as f64;
        let hx = ((h >> 32) & 0xFFFF) as f64 / 65536.0 * dims.nx() as f64;
        // Halo mass spectrum: many small, few large.
        let m = 100.0 * 2.0f64.powi(((h >> 48) % 6) as i32);
        let r_core = 1.0 + ((h >> 52) % 4) as f64;
        let lo = |c: f64, n: usize| ((c - HALO_RADIUS).max(0.0) as usize).min(n - 1);
        let hi = |c: f64, n: usize| ((c + HALO_RADIUS) as usize + 1).min(n);
        for z in lo(hz, dims.nz())..hi(hz, dims.nz()) {
            for y in lo(hy, dims.ny())..hi(hy, dims.ny()) {
                for x in lo(hx, dims.nx())..hi(hx, dims.nx()) {
                    let r2 =
                        (z as f64 - hz).powi(2) + (y as f64 - hy).powi(2) + (x as f64 - hx).powi(2);
                    if r2 < HALO_RADIUS * HALO_RADIUS {
                        let r = r2.sqrt().max(0.5);
                        // Truncated NFW-like profile, tapered to 0 at the rim.
                        let taper = 1.0 - r / HALO_RADIUS;
                        let add = m / (r * (1.0 + r / r_core).powi(2)) * taper;
                        let v = field.get(z, y, x);
                        field.set(z, y, x, v + add as f32);
                    }
                }
            }
        }
    }
    field
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = nyx_like(Dims::d3(16, 16, 16), 42);
        let b = nyx_like(Dims::d3(16, 16, 16), 42);
        assert_eq!(a, b);
        let c = nyx_like(Dims::d3(16, 16, 16), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn positive_with_large_dynamic_range() {
        let f = nyx_like(Dims::d3(32, 32, 32), 7);
        let (lo, hi) = f.value_range();
        assert!(lo > 0.0, "density must be positive, got {lo}");
        assert!(hi / lo > 100.0, "dynamic range {}", hi / lo);
    }

    #[test]
    fn has_halos_above_threshold() {
        // The paper's halo threshold: some points exceed 81.66, but only a
        // small fraction (ROI extraction story, Fig. 10).
        let f = nyx_like(Dims::d3(48, 48, 48), 1);
        let above = f.as_slice().iter().filter(|&&v| v > 81.66).count();
        assert!(above > 0, "no halos generated");
        assert!((above as f64) < 0.05 * f.len() as f64, "halos cover {above}/{} points", f.len());
    }

    #[test]
    fn mean_near_unity_background() {
        let f = nyx_like(Dims::d3(32, 32, 32), 3);
        // Median is a robust proxy for the background level.
        let mut v: Vec<f32> = f.as_slice().to_vec();
        v.sort_by(f32::total_cmp);
        let median = v[v.len() / 2] as f64;
        assert!((0.2..5.0).contains(&median), "median {median}");
    }
}
