//! Dataset catalogue mirroring the paper's Table 2.

use crate::synth;
use stz_field::{Dims, Field};

/// The four evaluation datasets of the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Nyx cosmology, FP32, 512³.
    Nyx,
    /// WarpX plasma accelerator, FP64, 256²×2048.
    WarpX,
    /// Magnetic Reconnection plasma physics, FP32, 512³.
    MagneticReconnection,
    /// Miranda hydrodynamics, FP32, 1024³.
    Miranda,
}

/// A generated field, typed as in the paper (WarpX is FP64, the rest FP32).
#[derive(Debug, Clone)]
pub enum DatasetField {
    F32(Field<f32>),
    F64(Field<f64>),
}

impl DatasetField {
    pub fn dims(&self) -> Dims {
        match self {
            DatasetField::F32(f) => f.dims(),
            DatasetField::F64(f) => f.dims(),
        }
    }

    pub fn nbytes(&self) -> usize {
        match self {
            DatasetField::F32(f) => f.nbytes(),
            DatasetField::F64(f) => f.nbytes(),
        }
    }
}

impl Dataset {
    /// All datasets in the paper's presentation order.
    pub fn all() -> [Dataset; 4] {
        [Dataset::Nyx, Dataset::WarpX, Dataset::MagneticReconnection, Dataset::Miranda]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Nyx => "Nyx",
            Dataset::WarpX => "WarpX",
            Dataset::MagneticReconnection => "Magnetic Reconnection",
            Dataset::Miranda => "Miranda",
        }
    }

    /// Full paper-scale dims (Table 2).
    pub fn paper_dims(&self) -> Dims {
        match self {
            Dataset::Nyx => Dims::d3(512, 512, 512),
            Dataset::WarpX => Dims::d3(256, 256, 2048),
            Dataset::MagneticReconnection => Dims::d3(512, 512, 512),
            Dataset::Miranda => Dims::d3(1024, 1024, 1024),
        }
    }

    /// Dims scaled down by `factor` per axis (≥ 1), preserving the paper's
    /// aspect ratios; used for laptop-scale benchmark runs.
    pub fn scaled_dims(&self, factor: usize) -> Dims {
        assert!(factor >= 1);
        let [nz, ny, nx] = self.paper_dims().as_array();
        Dims::d3((nz / factor).max(4), (ny / factor).max(4), (nx / factor).max(4))
    }

    /// Whether the field is FP64 (only WarpX, per Table 2).
    pub fn is_f64(&self) -> bool {
        matches!(self, Dataset::WarpX)
    }

    /// Generate the synthetic analogue at the given dims.
    pub fn generate(&self, dims: Dims, seed: u64) -> DatasetField {
        match self {
            Dataset::Nyx => DatasetField::F32(synth::nyx_like(dims, seed)),
            Dataset::WarpX => DatasetField::F64(synth::warpx_like(dims, seed)),
            Dataset::MagneticReconnection => DatasetField::F32(synth::magrec_like(dims, seed)),
            Dataset::Miranda => DatasetField::F32(synth::miranda_like(dims, seed)),
        }
    }

    /// A default laptop-scale instance (1/8 of each paper axis).
    pub fn generate_default(&self, seed: u64) -> DatasetField {
        self.generate(self.scaled_dims(8), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dims_match_table2() {
        assert_eq!(Dataset::Nyx.paper_dims().as_array(), [512, 512, 512]);
        assert_eq!(Dataset::WarpX.paper_dims().as_array(), [256, 256, 2048]);
        assert_eq!(Dataset::Miranda.paper_dims().as_array(), [1024, 1024, 1024]);
        // Per-timestep sizes from Table 2.
        assert_eq!(Dataset::Nyx.paper_dims().len() * 4, 512 << 20);
        assert_eq!(Dataset::WarpX.paper_dims().len() * 8, 1024 << 20);
        assert_eq!(Dataset::Miranda.paper_dims().len() * 4, 4096 << 20);
    }

    #[test]
    fn types_match_table2() {
        for d in Dataset::all() {
            let f = d.generate(Dims::d3(8, 8, 16), 1);
            match (d.is_f64(), &f) {
                (true, DatasetField::F64(_)) | (false, DatasetField::F32(_)) => {}
                _ => panic!("{} has wrong element type", d.name()),
            }
        }
    }

    #[test]
    fn scaled_dims_preserve_aspect() {
        let d = Dataset::WarpX.scaled_dims(8);
        assert_eq!(d.as_array(), [32, 32, 256]);
    }

    #[test]
    fn generate_is_deterministic() {
        for d in Dataset::all() {
            let a = d.generate(Dims::d3(8, 8, 8), 5);
            let b = d.generate(Dims::d3(8, 8, 8), 5);
            match (a, b) {
                (DatasetField::F32(x), DatasetField::F32(y)) => assert_eq!(x, y),
                (DatasetField::F64(x), DatasetField::F64(y)) => assert_eq!(x, y),
                _ => panic!("type mismatch"),
            }
        }
    }
}
