//! Integration tests for the stz-stream out-of-core container:
//!
//! * disk-backed decompression (full / progressive / ROI) is bit-identical
//!   to the in-memory `StzArchive` path;
//! * sub-volume ROI and preview queries read strictly fewer bytes than the
//!   archive, measured through a byte-counting source;
//! * corrupt containers — bad magic, flipped payload or footer bytes,
//!   truncations — yield errors, never panics.

use stz::backend::{registry, ErrorBound};
use stz::data::synth;
use stz::prelude::*;
use stz::stream::{
    format, pack_pipelined, pack_to_vec, ContainerReader, ContainerWriter, CountingSource,
    FileSource, ForeignArchive, MemorySource, PackEntry,
};

fn f32_archive(dims: Dims, seed: u64) -> (Field<f32>, StzArchive<f32>) {
    let f = synth::miranda_like(dims, seed);
    let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
    (f, a)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("stz_container_test_{}_{tag}.stzc", std::process::id()))
}

#[test]
fn disk_roundtrip_matches_memory_path() {
    let dims = Dims::d3(24, 20, 28);
    let (_, a0) = f32_archive(dims, 11);
    let (_, a1) = f32_archive(dims, 12);
    let path = temp_path("roundtrip");
    stz::stream::pack_to_file(&path, &[("t0", &a0), ("t1", &a1)]).unwrap();

    let reader = ContainerReader::open_path(&path).unwrap();
    assert_eq!(reader.entry_count(), 2);
    for (i, a) in [&a0, &a1].into_iter().enumerate() {
        let entry = reader.entry::<f32>(i).unwrap();
        // Full decompression.
        assert_eq!(entry.decompress().unwrap(), a.decompress().unwrap());
        // Every progressive level.
        for k in 1..=a.num_levels() {
            assert_eq!(
                entry.decompress_level(k).unwrap(),
                a.decompress_level(k).unwrap(),
                "entry {i} level {k}"
            );
        }
        // Incremental progressive decoder.
        let mut disk = entry.progressive().unwrap();
        let mut mem = a.progressive();
        while let Some(dp) = disk.next_level().unwrap() {
            assert_eq!(dp, mem.next_level().unwrap().unwrap());
            assert_eq!(disk.next_bytes(), mem.next_bytes());
        }
        // Regions of every flavor.
        for region in [
            Region::d3(3..9, 5..12, 7..20),
            Region::slice_z(dims, 8),
            Region::slice_z(dims, 9),
            Region::full(dims),
            Region::d3(23..24, 19..20, 27..28),
        ] {
            assert_eq!(
                entry.decompress_region(&region).unwrap(),
                a.decompress_region(&region).unwrap(),
                "entry {i} region {region:?}"
            );
        }
        // Payload round-trips bit-identically.
        assert_eq!(entry.read_archive().unwrap().as_bytes(), a.as_bytes());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn f64_entries_roundtrip() {
    let dims = Dims::d3(18, 18, 18);
    let f: Field<f64> = synth::warpx_like(dims, 5);
    let a = StzCompressor::new(StzConfig::three_level_relative(1e-5)).compress(&f).unwrap();
    let image = pack_to_vec(&[("w", &a)]).unwrap();
    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    let entry = reader.entry_by_name::<f64>("w").unwrap();
    assert_eq!(entry.decompress().unwrap(), a.decompress().unwrap());
    let region = Region::d3(4..10, 0..18, 2..9);
    assert_eq!(entry.decompress_region(&region).unwrap(), a.decompress_region(&region).unwrap());
}

/// The acceptance bar for the out-of-core subsystem: disk-backed
/// `decompress_region` must read strictly fewer bytes than the full archive
/// for sub-volume ROIs, with bit-identical output.
#[test]
fn roi_reads_strictly_fewer_bytes_than_archive() {
    let dims = Dims::d3(32, 32, 32);
    let (_, a) = f32_archive(dims, 21);
    let archive_len = a.compressed_len() as u64;
    let path = temp_path("counting");
    stz::stream::pack_to_file(&path, &[("field", &a)]).unwrap();

    let reader =
        ContainerReader::open(CountingSource::new(FileSource::open(&path).unwrap())).unwrap();
    let entry = reader.entry::<f32>(0).unwrap();

    for region in [
        Region::d3(0..8, 0..8, 0..8),
        Region::d3(10..22, 10..22, 10..22),
        Region::slice_z(dims, 15),
        Region::slice_z(dims, 16),
        Region::d3(0..1, 0..1, 0..32),
    ] {
        reader.source().reset();
        let roi = entry.decompress_region(&region).unwrap();
        let bytes = reader.source().bytes_read();
        assert!(
            bytes < archive_len,
            "region {region:?} read {bytes} bytes, archive is {archive_len}"
        );
        assert_eq!(roi, a.decompress_region(&region).unwrap(), "region {region:?}");
    }

    // 2-D slices additionally skip whole sub-blocks by parity: well under
    // the full archive, not just "strictly fewer".
    reader.source().reset();
    entry.decompress_region(&Region::slice_z(dims, 16)).unwrap();
    assert!(
        reader.source().bytes_read() < archive_len * 3 / 4,
        "slice read {} of {archive_len} bytes — parity skipping not engaged",
        reader.source().bytes_read()
    );

    // Progressive previews cost ~bytes_through_level, far below the archive.
    reader.source().reset();
    let p1 = entry.decompress_level(1).unwrap();
    let preview_bytes = reader.source().bytes_read();
    assert_eq!(p1, a.decompress_level(1).unwrap());
    assert!(
        preview_bytes < archive_len / 8,
        "level-1 preview read {preview_bytes} of {archive_len} bytes"
    );
    assert!(preview_bytes >= a.bytes_through_level(1) as u64);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_magic_rejected() {
    let (_, a) = f32_archive(Dims::d3(12, 12, 12), 3);
    let mut image = pack_to_vec(&[("x", &a)]).unwrap();
    image[0] ^= 0xFF;
    assert!(ContainerReader::open(MemorySource::new(image)).is_err());

    // A bare archive is not a container either.
    assert!(ContainerReader::open(MemorySource::new(a.as_bytes().to_vec())).is_err());
}

#[test]
fn unsupported_version_rejected() {
    let (_, a) = f32_archive(Dims::d3(12, 12, 12), 3);
    let mut image = pack_to_vec(&[("x", &a)]).unwrap();
    image[4] = 99;
    assert!(ContainerReader::open(MemorySource::new(image)).is_err());
}

#[test]
fn bad_trailer_magic_rejected() {
    let (_, a) = f32_archive(Dims::d3(12, 12, 12), 3);
    let mut image = pack_to_vec(&[("x", &a)]).unwrap();
    let n = image.len();
    image[n - 1] ^= 0xA5;
    assert!(ContainerReader::open(MemorySource::new(image)).is_err());
}

#[test]
fn payload_corruption_caught_by_checksums() {
    let (_, a) = f32_archive(Dims::d3(14, 13, 12), 9);
    let image = pack_to_vec(&[("x", &a)]).unwrap();
    // Payload spans HEADER_LEN..footer_off (one entry, written first).
    let trailer: [u8; 24] = image[image.len() - 24..].try_into().unwrap();
    let (footer_off, _, _) = format::parse_trailer(&trailer, image.len() as u64).unwrap();
    let payload = format::HEADER_LEN as usize..footer_off as usize;

    let expected = a.decompress().unwrap();
    let mut section_flips = 0usize;
    let step = (payload.len() / 151).max(1);
    for pos in payload.clone().step_by(step) {
        let mut corrupted = image.clone();
        corrupted[pos] ^= 0xA5;
        // The index is intact, so the container still opens…
        let reader = ContainerReader::open(MemorySource::new(corrupted)).unwrap();
        let entry = reader.entry::<f32>(0).unwrap();
        // …but the whole-payload checksum always catches the flip…
        assert!(
            entry.read_archive().is_err(),
            "flip at payload byte {pos} not caught by the payload checksum"
        );
        // …and section-based decompression either hits a section CRC (flip
        // inside an indexed section) or is untouched by construction (flip
        // in the embedded archive's header/framing bytes, which the
        // footer-driven reader never fetches).
        match entry.decompress() {
            Err(_) => section_flips += 1,
            Ok(field) => assert_eq!(
                field, expected,
                "flip at payload byte {pos} silently changed the output"
            ),
        }
    }
    assert!(section_flips > 0, "sweep never hit an indexed section");
}

#[test]
fn footer_corruption_rejected() {
    let (_, a) = f32_archive(Dims::d3(14, 13, 12), 9);
    let image = pack_to_vec(&[("x", &a)]).unwrap();
    let trailer: [u8; 24] = image[image.len() - 24..].try_into().unwrap();
    let (footer_off, footer_len, _) = format::parse_trailer(&trailer, image.len() as u64).unwrap();
    for pos in footer_off..footer_off + footer_len {
        let mut corrupted = image.clone();
        corrupted[pos as usize] ^= 0x5A;
        assert!(
            ContainerReader::open(MemorySource::new(corrupted)).is_err(),
            "footer flip at {pos} went undetected"
        );
    }
}

#[test]
fn truncation_never_panics() {
    let (_, a) = f32_archive(Dims::d3(14, 13, 12), 9);
    let image = pack_to_vec(&[("x", &a)]).unwrap();
    // Every truncation point near the tail (trailer + footer), stepped
    // sweep elsewhere: all must error (the trailer is gone), never panic.
    let tail_start = image.len().saturating_sub(128);
    let step = (image.len() / 97).max(1);
    let cuts = (0..image.len()).step_by(step).chain(tail_start..image.len());
    for cut in cuts {
        assert!(
            ContainerReader::open(MemorySource::new(image[..cut].to_vec())).is_err(),
            "truncation to {cut} bytes did not error"
        );
    }
}

#[test]
fn empty_container_roundtrips() {
    let image = pack_to_vec::<f32>(&[]).unwrap();
    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    assert_eq!(reader.entry_count(), 0);
    assert!(reader.entry::<f32>(0).is_err());
}

// ---------------------------------------------------------------------------
// Multi-backend containers (format v2)
// ---------------------------------------------------------------------------

/// Compress `field` with the named backend into a [`ForeignArchive`].
fn foreign(field: &Field<f32>, backend: &str, eb: f64) -> ForeignArchive {
    let codec = registry().by_name(backend).unwrap();
    let bytes = stz::backend::compress(codec, field, &ErrorBound::Absolute(eb)).unwrap();
    ForeignArchive::new::<f32>(codec.id(), field.dims(), eb, bytes)
}

#[test]
fn mixed_backend_container_roundtrips() {
    let dims = Dims::d3(20, 20, 20);
    let field = synth::miranda_like(dims, 31);
    let eb = 1e-3;
    let stz_archive = StzCompressor::new(StzConfig::three_level(eb)).compress(&field).unwrap();

    let mut w = ContainerWriter::new(Vec::new()).unwrap();
    w.add_archive("native", &stz_archive).unwrap();
    for name in ["sz3", "zfp", "sperr", "mgard"] {
        w.add_foreign(name, &foreign(&field, name, eb)).unwrap();
    }
    let image = w.finish().unwrap();

    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    assert_eq!(reader.entry_count(), 5);

    // The native entry keeps the full streaming surface.
    let native = reader.entry_by_name::<f32>("native").unwrap();
    assert_eq!(native.codec_id(), stz::backend::id::STZ);
    assert_eq!(native.decompress().unwrap(), stz_archive.decompress().unwrap());
    assert!(native.decompress_level(1).is_ok());

    // Every foreign entry decodes to the backend's direct decompression and
    // honours the bound; ROI extraction works via the full-decode fallback.
    let region = Region::d3(3..9, 5..12, 7..15);
    for name in ["sz3", "zfp", "sperr", "mgard"] {
        let codec = registry().by_name(name).unwrap();
        let entry = reader.entry_by_name::<f32>(name).unwrap();
        assert_eq!(entry.codec_id(), codec.id());
        let direct: Field<f32> =
            stz::backend::decompress(codec, &entry.read_payload().unwrap()).unwrap();
        let full = entry.decompress().unwrap();
        assert_eq!(full, direct, "{name}: container decode != direct decode");
        let err = stz::data::metrics::max_abs_error(&field, &full);
        assert!(err <= eb * (1.0 + 1e-9), "{name}: err {err} > {eb}");
        assert_eq!(
            entry.decompress_region(&region).unwrap(),
            full.extract_region(&region),
            "{name}: region crop"
        );
        // STZ-only surfaces error cleanly.
        assert!(entry.decompress_level(1).is_err(), "{name}: preview must error");
        assert!(entry.progressive().is_err(), "{name}: progressive must error");
        assert!(entry.read_archive().is_err(), "{name}: read_archive must error");
        // Out-of-range regions error, never panic.
        assert!(entry.decompress_region(&Region::d3(0..21, 0..1, 0..1)).is_err());
    }

    // Metadata reflects the codec, element type and bound per entry.
    for meta in reader.entries() {
        assert_eq!(meta.type_tag(), 0);
        assert_eq!(meta.dims(), dims);
        assert_eq!(meta.error_bound(), eb);
        let expected = if meta.name() == "native" { "stz" } else { meta.name() };
        assert_eq!(meta.codec_name(), Some(expected));
        assert_eq!(meta.header().is_some(), meta.name() == "native");
    }
}

#[test]
fn mixed_backend_pipelined_pack_matches_sequential() {
    let dims = Dims::d3(16, 16, 16);
    let eb = 1e-3;
    let backends = ["stz", "sz3", "zfp", "sperr", "mgard", "sz3"];
    let pack = |threads: usize| -> Vec<u8> {
        pack_pipelined(
            Vec::new(),
            backends.iter().enumerate().collect::<Vec<_>>(),
            threads,
            |(i, name)| {
                let field = synth::miranda_like(dims, 40 + i as u64);
                let entry: PackEntry<f32> = if *name == "stz" {
                    StzCompressor::new(StzConfig::three_level(eb)).compress(&field)?.into()
                } else {
                    foreign(&field, name, eb).into()
                };
                Ok((format!("e{i}-{name}"), entry))
            },
        )
        .unwrap()
    };
    let sequential = pack(1);
    for threads in [2, 4, 8] {
        assert_eq!(pack(threads), sequential, "{threads} thread(s)");
    }
    // And the result is a fully readable mixed container.
    let reader = ContainerReader::open(MemorySource::new(sequential)).unwrap();
    assert_eq!(reader.entry_count(), backends.len());
    for i in 0..backends.len() {
        let entry = reader.entry::<f32>(i).unwrap();
        let field = synth::miranda_like(dims, 40 + i as u64);
        let err = stz::data::metrics::max_abs_error(&field, &entry.decompress().unwrap());
        assert!(err <= eb * (1.0 + 1e-9), "entry {i}: err {err}");
    }
}

#[test]
fn f64_foreign_entries_roundtrip() {
    let dims = Dims::d3(12, 12, 24);
    let field: Field<f64> = synth::warpx_like(dims, 9);
    let (lo, hi) = field.value_range();
    let eb = 1e-4 * (hi - lo);
    let codec = registry().by_name("sperr").unwrap();
    let bytes = stz::backend::compress(codec, &field, &ErrorBound::Absolute(eb)).unwrap();

    let mut w = ContainerWriter::new(Vec::new()).unwrap();
    w.add_foreign("w", &ForeignArchive::new::<f64>(codec.id(), dims, eb, bytes)).unwrap();
    let image = w.finish().unwrap();

    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    // Type tags are enforced: the f64 entry refuses an f32 reader.
    assert!(reader.entry::<f32>(0).is_err());
    let entry = reader.entry::<f64>(0).unwrap();
    let err = stz::data::metrics::max_abs_error(&field, &entry.decompress().unwrap());
    assert!(err <= eb * (1.0 + 1e-9), "err {err} > {eb}");
}

#[test]
fn unknown_codec_id_lists_but_refuses_to_decode() {
    let dims = Dims::d3(8, 8, 8);
    let mut w = ContainerWriter::new(Vec::new()).unwrap();
    w.add_foreign(
        "mystery",
        &ForeignArchive { codec: 99, type_tag: 0, dims, eb: 1e-3, bytes: vec![7; 64] },
    )
    .unwrap();
    let image = w.finish().unwrap();

    // The index is self-describing, so the container opens and lists…
    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    let meta = reader.entry_meta(0).unwrap();
    assert_eq!(meta.codec_id(), 99);
    assert_eq!(meta.codec_name(), None);
    assert_eq!(meta.dims(), dims);

    // …the raw payload is still fetchable (CRC-verified)…
    let entry = reader.entry::<f32>(0).unwrap();
    assert_eq!(entry.read_payload().unwrap(), vec![7; 64]);

    // …but every decode path errors cleanly, never panics.
    let err = entry.decompress().unwrap_err();
    assert!(err.to_string().contains("99"), "error should name the codec id: {err}");
    assert!(entry.decompress_region(&Region::d3(0..4, 0..4, 0..4)).is_err());
    assert!(entry.decompress_level(1).is_err());
}

#[test]
fn stz_entries_rejected_from_the_foreign_path() {
    let mut w = ContainerWriter::new(Vec::new()).unwrap();
    let bad = ForeignArchive {
        codec: stz::backend::id::STZ,
        type_tag: 0,
        dims: Dims::d3(4, 4, 4),
        eb: 1e-3,
        bytes: vec![0; 16],
    };
    assert!(w.add_foreign("x", &bad).is_err(), "stz blobs must use the indexed path");
}

#[test]
fn v1_containers_still_parse_as_all_stz() {
    // Synthesize a version-1 container from a v2 one: v1 footers predate
    // the per-entry codec byte, so strip it and patch the version, trailer
    // and checksums. This is byte-for-byte what the v1 writer produced.
    let (_, a) = f32_archive(Dims::d3(14, 14, 14), 8);
    let v2 = pack_to_vec(&[("legacy", &a)]).unwrap();
    let trailer: [u8; 24] = v2[v2.len() - 24..].try_into().unwrap();
    let (footer_off, footer_len, _) = format::parse_trailer(&trailer, v2.len() as u64).unwrap();
    let footer = &v2[footer_off as usize..(footer_off + footer_len) as usize];

    // v2 footer: uvarint count=1, name block, codec byte, stz body.
    let mut r = stz::codec::ByteReader::new(footer);
    assert_eq!(r.get_uvarint().unwrap(), 1);
    let name = r.get_block().unwrap().to_vec();
    assert_eq!(r.get_u8().unwrap(), stz::backend::id::STZ);
    let body_start = footer.len() - r.remaining();

    let mut v1_footer = stz::codec::ByteWriter::new();
    v1_footer.put_uvarint(1);
    v1_footer.put_block(&name);
    let mut v1_footer = v1_footer.finish();
    v1_footer.extend_from_slice(&footer[body_start..]);

    let mut image = v2[..footer_off as usize].to_vec();
    image[4] = 1; // container version byte
    image.extend_from_slice(&v1_footer);
    image.extend_from_slice(&format::encode_trailer(
        footer_off,
        v1_footer.len() as u64,
        stz::stream::crc::crc32(&v1_footer),
    ));

    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    let meta = reader.entry_meta(0).unwrap();
    assert_eq!(meta.codec_name(), Some("stz"));
    assert_eq!(meta.name(), "legacy");
    let entry = reader.entry::<f32>(0).unwrap();
    assert_eq!(entry.decompress().unwrap(), a.decompress().unwrap());
    assert_eq!(entry.decompress_level(1).unwrap(), a.decompress_level(1).unwrap());
}
