//! Integration tests for the stz-stream out-of-core container:
//!
//! * disk-backed decompression (full / progressive / ROI) is bit-identical
//!   to the in-memory `StzArchive` path;
//! * sub-volume ROI and preview queries read strictly fewer bytes than the
//!   archive, measured through a byte-counting source;
//! * corrupt containers — bad magic, flipped payload or footer bytes,
//!   truncations — yield errors, never panics.

use stz::data::synth;
use stz::prelude::*;
use stz::stream::{format, pack_to_vec, ContainerReader, CountingSource, FileSource, MemorySource};

fn f32_archive(dims: Dims, seed: u64) -> (Field<f32>, StzArchive<f32>) {
    let f = synth::miranda_like(dims, seed);
    let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
    (f, a)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("stz_container_test_{}_{tag}.stzc", std::process::id()))
}

#[test]
fn disk_roundtrip_matches_memory_path() {
    let dims = Dims::d3(24, 20, 28);
    let (_, a0) = f32_archive(dims, 11);
    let (_, a1) = f32_archive(dims, 12);
    let path = temp_path("roundtrip");
    stz::stream::pack_to_file(&path, &[("t0", &a0), ("t1", &a1)]).unwrap();

    let reader = ContainerReader::open_path(&path).unwrap();
    assert_eq!(reader.entry_count(), 2);
    for (i, a) in [&a0, &a1].into_iter().enumerate() {
        let entry = reader.entry::<f32>(i).unwrap();
        // Full decompression.
        assert_eq!(entry.decompress().unwrap(), a.decompress().unwrap());
        // Every progressive level.
        for k in 1..=a.num_levels() {
            assert_eq!(
                entry.decompress_level(k).unwrap(),
                a.decompress_level(k).unwrap(),
                "entry {i} level {k}"
            );
        }
        // Incremental progressive decoder.
        let mut disk = entry.progressive();
        let mut mem = a.progressive();
        while let Some(dp) = disk.next_level().unwrap() {
            assert_eq!(dp, mem.next_level().unwrap().unwrap());
            assert_eq!(disk.next_bytes(), mem.next_bytes());
        }
        // Regions of every flavor.
        for region in [
            Region::d3(3..9, 5..12, 7..20),
            Region::slice_z(dims, 8),
            Region::slice_z(dims, 9),
            Region::full(dims),
            Region::d3(23..24, 19..20, 27..28),
        ] {
            assert_eq!(
                entry.decompress_region(&region).unwrap(),
                a.decompress_region(&region).unwrap(),
                "entry {i} region {region:?}"
            );
        }
        // Payload round-trips bit-identically.
        assert_eq!(entry.read_archive().unwrap().as_bytes(), a.as_bytes());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn f64_entries_roundtrip() {
    let dims = Dims::d3(18, 18, 18);
    let f: Field<f64> = synth::warpx_like(dims, 5);
    let a = StzCompressor::new(StzConfig::three_level_relative(1e-5)).compress(&f).unwrap();
    let image = pack_to_vec(&[("w", &a)]).unwrap();
    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    let entry = reader.entry_by_name::<f64>("w").unwrap();
    assert_eq!(entry.decompress().unwrap(), a.decompress().unwrap());
    let region = Region::d3(4..10, 0..18, 2..9);
    assert_eq!(entry.decompress_region(&region).unwrap(), a.decompress_region(&region).unwrap());
}

/// The acceptance bar for the out-of-core subsystem: disk-backed
/// `decompress_region` must read strictly fewer bytes than the full archive
/// for sub-volume ROIs, with bit-identical output.
#[test]
fn roi_reads_strictly_fewer_bytes_than_archive() {
    let dims = Dims::d3(32, 32, 32);
    let (_, a) = f32_archive(dims, 21);
    let archive_len = a.compressed_len() as u64;
    let path = temp_path("counting");
    stz::stream::pack_to_file(&path, &[("field", &a)]).unwrap();

    let reader =
        ContainerReader::open(CountingSource::new(FileSource::open(&path).unwrap())).unwrap();
    let entry = reader.entry::<f32>(0).unwrap();

    for region in [
        Region::d3(0..8, 0..8, 0..8),
        Region::d3(10..22, 10..22, 10..22),
        Region::slice_z(dims, 15),
        Region::slice_z(dims, 16),
        Region::d3(0..1, 0..1, 0..32),
    ] {
        reader.source().reset();
        let roi = entry.decompress_region(&region).unwrap();
        let bytes = reader.source().bytes_read();
        assert!(
            bytes < archive_len,
            "region {region:?} read {bytes} bytes, archive is {archive_len}"
        );
        assert_eq!(roi, a.decompress_region(&region).unwrap(), "region {region:?}");
    }

    // 2-D slices additionally skip whole sub-blocks by parity: well under
    // the full archive, not just "strictly fewer".
    reader.source().reset();
    entry.decompress_region(&Region::slice_z(dims, 16)).unwrap();
    assert!(
        reader.source().bytes_read() < archive_len * 3 / 4,
        "slice read {} of {archive_len} bytes — parity skipping not engaged",
        reader.source().bytes_read()
    );

    // Progressive previews cost ~bytes_through_level, far below the archive.
    reader.source().reset();
    let p1 = entry.decompress_level(1).unwrap();
    let preview_bytes = reader.source().bytes_read();
    assert_eq!(p1, a.decompress_level(1).unwrap());
    assert!(
        preview_bytes < archive_len / 8,
        "level-1 preview read {preview_bytes} of {archive_len} bytes"
    );
    assert!(preview_bytes >= a.bytes_through_level(1) as u64);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_magic_rejected() {
    let (_, a) = f32_archive(Dims::d3(12, 12, 12), 3);
    let mut image = pack_to_vec(&[("x", &a)]).unwrap();
    image[0] ^= 0xFF;
    assert!(ContainerReader::open(MemorySource::new(image)).is_err());

    // A bare archive is not a container either.
    assert!(ContainerReader::open(MemorySource::new(a.as_bytes().to_vec())).is_err());
}

#[test]
fn unsupported_version_rejected() {
    let (_, a) = f32_archive(Dims::d3(12, 12, 12), 3);
    let mut image = pack_to_vec(&[("x", &a)]).unwrap();
    image[4] = 99;
    assert!(ContainerReader::open(MemorySource::new(image)).is_err());
}

#[test]
fn bad_trailer_magic_rejected() {
    let (_, a) = f32_archive(Dims::d3(12, 12, 12), 3);
    let mut image = pack_to_vec(&[("x", &a)]).unwrap();
    let n = image.len();
    image[n - 1] ^= 0xA5;
    assert!(ContainerReader::open(MemorySource::new(image)).is_err());
}

#[test]
fn payload_corruption_caught_by_checksums() {
    let (_, a) = f32_archive(Dims::d3(14, 13, 12), 9);
    let image = pack_to_vec(&[("x", &a)]).unwrap();
    // Payload spans HEADER_LEN..footer_off (one entry, written first).
    let trailer: [u8; 24] = image[image.len() - 24..].try_into().unwrap();
    let (footer_off, _, _) = format::parse_trailer(&trailer, image.len() as u64).unwrap();
    let payload = format::HEADER_LEN as usize..footer_off as usize;

    let expected = a.decompress().unwrap();
    let mut section_flips = 0usize;
    let step = (payload.len() / 151).max(1);
    for pos in payload.clone().step_by(step) {
        let mut corrupted = image.clone();
        corrupted[pos] ^= 0xA5;
        // The index is intact, so the container still opens…
        let reader = ContainerReader::open(MemorySource::new(corrupted)).unwrap();
        let entry = reader.entry::<f32>(0).unwrap();
        // …but the whole-payload checksum always catches the flip…
        assert!(
            entry.read_archive().is_err(),
            "flip at payload byte {pos} not caught by the payload checksum"
        );
        // …and section-based decompression either hits a section CRC (flip
        // inside an indexed section) or is untouched by construction (flip
        // in the embedded archive's header/framing bytes, which the
        // footer-driven reader never fetches).
        match entry.decompress() {
            Err(_) => section_flips += 1,
            Ok(field) => assert_eq!(
                field, expected,
                "flip at payload byte {pos} silently changed the output"
            ),
        }
    }
    assert!(section_flips > 0, "sweep never hit an indexed section");
}

#[test]
fn footer_corruption_rejected() {
    let (_, a) = f32_archive(Dims::d3(14, 13, 12), 9);
    let image = pack_to_vec(&[("x", &a)]).unwrap();
    let trailer: [u8; 24] = image[image.len() - 24..].try_into().unwrap();
    let (footer_off, footer_len, _) = format::parse_trailer(&trailer, image.len() as u64).unwrap();
    for pos in footer_off..footer_off + footer_len {
        let mut corrupted = image.clone();
        corrupted[pos as usize] ^= 0x5A;
        assert!(
            ContainerReader::open(MemorySource::new(corrupted)).is_err(),
            "footer flip at {pos} went undetected"
        );
    }
}

#[test]
fn truncation_never_panics() {
    let (_, a) = f32_archive(Dims::d3(14, 13, 12), 9);
    let image = pack_to_vec(&[("x", &a)]).unwrap();
    // Every truncation point near the tail (trailer + footer), stepped
    // sweep elsewhere: all must error (the trailer is gone), never panic.
    let tail_start = image.len().saturating_sub(128);
    let step = (image.len() / 97).max(1);
    let cuts = (0..image.len()).step_by(step).chain(tail_start..image.len());
    for cut in cuts {
        assert!(
            ContainerReader::open(MemorySource::new(image[..cut].to_vec())).is_err(),
            "truncation to {cut} bytes did not error"
        );
    }
}

#[test]
fn empty_container_roundtrips() {
    let image = pack_to_vec::<f32>(&[]).unwrap();
    let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
    assert_eq!(reader.entry_count(), 0);
    assert!(reader.entry::<f32>(0).is_err());
}
