//! Integration tests for the streaming features on realistic workloads:
//! progressive previews, random-access regions, and serial/parallel
//! equivalence across the public API.

use stz::core::roi::{self, RoiCriterion, RoiStat};
use stz::data::synth;
use stz::prelude::*;

fn archive(dims: Dims, eb: f64, seed: u64) -> (Field<f32>, StzArchive<f32>) {
    let f = synth::nyx_like(dims, seed);
    let a = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
    (f, a)
}

#[test]
fn progressive_previews_are_downsamples_of_full() {
    let (_, a) = archive(Dims::d3(40, 36, 44), 1e-2, 3);
    let full = a.decompress().unwrap();
    for k in 1..=3u8 {
        let p = a.decompress_level(k).unwrap();
        let stride = 1usize << (3 - k);
        assert_eq!(p, full.downsample(stride), "level {k}");
    }
}

#[test]
fn random_access_agrees_with_full_on_many_regions() {
    let dims = Dims::d3(32, 32, 32);
    let (_, a) = archive(dims, 1e-2, 5);
    let full = a.decompress().unwrap();
    let regions = [
        Region::d3(0..32, 0..32, 0..32),
        Region::d3(0..1, 0..1, 0..1),
        Region::d3(31..32, 31..32, 31..32),
        Region::d3(5..6, 0..32, 0..32),
        Region::d3(0..32, 7..8, 0..32),
        Region::d3(0..32, 0..32, 9..10),
        Region::d3(3..29, 1..31, 2..30),
        Region::d3(8..16, 8..16, 8..16),
        Region::d3(0..2, 30..32, 0..2),
    ];
    for r in regions {
        assert_eq!(a.decompress_region(&r).unwrap(), full.extract_region(&r), "{r:?}");
    }
}

#[test]
fn parallel_paths_bit_identical_on_warpx() {
    let f = synth::warpx_like(Dims::d3(16, 16, 128), 2);
    let c = StzCompressor::new(StzConfig::three_level_relative(1e-4));
    let serial = c.compress(&f).unwrap();
    let parallel = c.compress_parallel(&f).unwrap();
    assert_eq!(serial.as_bytes(), parallel.as_bytes());
    assert_eq!(serial.decompress().unwrap(), parallel.decompress_parallel().unwrap());
}

#[test]
fn preview_then_fetch_workflow() {
    // The paper's workflow: preview coarse -> select ROI -> fetch at full
    // resolution; the fetched data must exactly match a full decompression.
    let dims = Dims::d3(48, 48, 48);
    let (_, a) = archive(dims, 1e-2, 8);
    let preview = a.decompress_level(2).unwrap();
    let tiles =
        roi::select_regions(&preview, [3, 3, 3], RoiCriterion::TopPercent(RoiStat::MaxValue, 5.0));
    assert!(!tiles.is_empty());
    let full = a.decompress().unwrap();
    for tile in tiles {
        let region = roi::upscale_region(&tile, 2, dims);
        assert_eq!(a.decompress_region(&region).unwrap(), full.extract_region(&region));
    }
}

#[test]
fn two_and_four_level_streaming() {
    let f = synth::miranda_like(Dims::d3(36, 36, 36), 4);
    for levels in [2u8, 4] {
        let a = StzCompressor::new(StzConfig::three_level(1e-3).with_levels(levels))
            .compress(&f)
            .unwrap();
        let full = a.decompress().unwrap();
        for k in 1..=levels {
            let p = a.decompress_level(k).unwrap();
            assert_eq!(p, full.downsample(1usize << (levels - k)), "L{levels} level {k}");
        }
        let r = Region::d3(5..20, 10..30, 0..36);
        assert_eq!(a.decompress_region(&r).unwrap(), full.extract_region(&r));
    }
}

#[test]
fn progressive_bytes_fraction_matches_hierarchy() {
    // The coarsest level of a 3-level 3-D archive covers 1/64 of the points;
    // its byte share should be of the same order (not exact — entropy
    // differs per level) and far below the full archive.
    let (_, a) = archive(Dims::d3(64, 64, 64), 1e-3, 9);
    let b1 = a.bytes_through_level(1);
    let total = a.compressed_len();
    assert!(b1 * 4 < total, "level 1 is {b1} of {total} bytes");
}

#[test]
fn slice_access_decodes_fewer_blocks_than_box() {
    let (_, a) = archive(Dims::d3(48, 48, 48), 1e-2, 10);
    let dims = Dims::d3(48, 48, 48);
    let (_, slice_bd) = a.decompress_region_with_breakdown(&Region::slice_z(dims, 24)).unwrap();
    let (_, box_bd) =
        a.decompress_region_with_breakdown(&Region::d3(12..36, 12..36, 12..36)).unwrap();
    let finest_slice = slice_bd.levels.last().unwrap();
    let finest_box = box_bd.levels.last().unwrap();
    assert!(finest_slice.decoded_blocks < finest_box.decoded_blocks);
    assert_eq!(finest_box.skipped_blocks, 0);
}

#[test]
fn sperr_preview_and_mgard_levels_also_stream() {
    // Feature parity checks for the baselines' streaming modes.
    let f = synth::miranda_like(Dims::d3(32, 32, 32), 6);
    // SPERR: precision-progressive preview.
    let sperr_bytes = stz::sperr::compress(&f, &stz::sperr::SperrConfig::new(1e-4));
    let coarse: Field<f32> = stz::sperr::decompress_preview(&sperr_bytes, 8).unwrap();
    assert_eq!(coarse.dims(), f.dims());
    // MGARD: resolution-progressive levels.
    let mgard_bytes = stz::mgard::compress(&f, &stz::mgard::MgardConfig::new(1e-3));
    let full: Field<f32> = stz::mgard::decompress(&mgard_bytes).unwrap();
    let lvl: Field<f32> = stz::mgard::decompress_level(&mgard_bytes, 2).unwrap();
    assert!(lvl.len() < full.len());
    // ZFP: random access regions.
    let zfp_bytes = stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(1e-3));
    let zfull: Field<f32> = stz::zfp::decompress(&zfp_bytes).unwrap();
    let r = Region::d3(4..12, 8..20, 0..32);
    let zr: Field<f32> = stz::zfp::decompress_region(&zfp_bytes, &r).unwrap();
    assert_eq!(zr, zfull.extract_region(&r));
}
