//! Replay the pinned fuzz corpus under `tests/corpus/regressions/`.
//!
//! Every `.hex` reproducer — hand-ported hostile cases from
//! `tests/serve.rs`, structurally corrupted containers, and minimized
//! inputs of bugs the fuzzer actually found — is fed back through the
//! harness named in its `# target:` header and must:
//!
//! * not panic (the engine's panic oracle, via `stz_fuzz::replay`);
//! * never trigger a single allocation beyond the 64 MiB replay cap
//!   (the allocation oracle, via the tracking global allocator);
//! * classify identically across two replays (determinism oracle);
//! * stay in the error *class* recorded when the case was pinned: the
//!   stored signature minus its message hash must match the current one,
//!   so a parser change that turns "corrupt" into a panic or an "ok"
//!   fails here before it ships.
//!
//! Regenerate the corpus with `cargo run --release -p stz-fuzz --bin
//! gen_corpus` after intentional classification changes.

use std::path::PathBuf;
use stz_fuzz::corpus::Reproducer;
use stz_fuzz::{replay, CodecTarget, ContainerTarget, FuzzTarget, ProtoTarget};

#[global_allocator]
static ALLOC: stz_fuzz::alloc_guard::TrackingAlloc = stz_fuzz::alloc_guard::TrackingAlloc;

/// Largest single allocation any replayed reproducer may cause. The live
/// harnesses run with a tighter engine-configured cap; replay allows
/// headroom for test-runner overhead while still catching the multi-GiB
/// reservations this oracle exists for.
const REPLAY_ALLOC_CAP: usize = 64 << 20;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/regressions")
}

/// Signature minus the trailing message hash: `target:class` — the part
/// that must stay stable across parser-message wording changes.
fn class_of(signature: &str) -> &str {
    signature.rsplit_once(':').map_or(signature, |(class, _hash)| class)
}

#[test]
fn every_pinned_reproducer_replays_clean() {
    let container = ContainerTarget;
    let proto = ProtoTarget;
    let codec = CodecTarget;

    // Tighten the decode-allocation guard the same way the harness
    // binaries do, so guard-dependent classifications replay identically.
    stz_codec::set_max_decode_bytes((REPLAY_ALLOC_CAP / 2) as u64);

    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("read_dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "hex"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 15,
        "expected the pinned corpus to hold at least 15 cases, found {} in {}",
        entries.len(),
        dir.display()
    );

    for path in entries {
        let text = std::fs::read_to_string(&path).expect("read reproducer");
        let rep = Reproducer::parse(&text)
            .unwrap_or_else(|e| panic!("{}: malformed reproducer: {e}", path.display()));
        let target: &dyn FuzzTarget = match rep.target.as_str() {
            "container" => &container,
            "proto" => &proto,
            "codec" => &codec,
            other => panic!("{}: unknown target {other:?}", path.display()),
        };

        stz_fuzz::alloc_guard::reset_peak();
        let first = replay(target, &rep.bytes)
            .unwrap_or_else(|msg| panic!("{}: replay panicked: {msg}", path.display()));
        let peak = stz_fuzz::alloc_guard::peak_single();
        assert!(
            peak <= REPLAY_ALLOC_CAP,
            "{}: replay allocated {peak} bytes in one call (cap {REPLAY_ALLOC_CAP})",
            path.display()
        );

        let second = replay(target, &rep.bytes)
            .unwrap_or_else(|msg| panic!("{}: second replay panicked: {msg}", path.display()));
        assert_eq!(
            first,
            second,
            "{}: classification changed between two replays of the same bytes",
            path.display()
        );

        let now = first.signature(target.name());
        assert_eq!(
            class_of(&rep.signature),
            class_of(&now),
            "{}: pinned class {:?} drifted to {:?} — rerun gen_corpus if intentional",
            path.display(),
            rep.signature,
            now
        );
    }
}

#[test]
fn corpus_covers_all_three_harnesses() {
    let mut targets = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("read_dir entry").path();
        if path.extension().is_some_and(|x| x == "hex") {
            let rep = Reproducer::parse(&std::fs::read_to_string(&path).expect("read"))
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            targets.insert(rep.target);
        }
    }
    for want in ["container", "proto", "codec"] {
        assert!(targets.contains(want), "no pinned cases for the {want} harness");
    }
}
