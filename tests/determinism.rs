//! Determinism suite for the multi-threaded compression runtime.
//!
//! The work-stealing pool (`crates/shims/rayon`) promises that parallel
//! execution is **byte-identical** to sequential execution at every thread
//! count: chunk boundaries depend only on input length and results are
//! reassembled in input order. These tests pin that promise across the
//! stack — archives, decompressions, progressive refinement, and pipelined
//! containers — for both element types.

use stz::prelude::*;
use stz::stream::pack_pipelined;

const WIDTHS: [usize; 3] = [1, 2, 8];

fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
}

fn f32_field(dims: Dims) -> Field<f32> {
    Field::from_fn(dims, |z, y, x| {
        let (zf, yf, xf) = (z as f32 * 0.21, y as f32 * 0.13, x as f32 * 0.17);
        zf.sin() * yf.cos() + (xf + yf).sin() + 0.3 * zf
    })
}

fn f64_field(dims: Dims) -> Field<f64> {
    Field::from_fn(dims, |z, y, x| ((z * 3 + y * 5 + x * 7) as f64 * 0.01).sin() * 1e4)
}

fn assert_archive_deterministic<T: Scalar>(field: &Field<T>, eb: f64) {
    let compressor = StzCompressor::new(StzConfig::three_level(eb));
    let serial = compressor.compress(field).unwrap();
    for threads in WIDTHS {
        let parallel = with_pool(threads, || compressor.compress_parallel(field)).unwrap();
        assert_eq!(
            serial.as_bytes(),
            parallel.as_bytes(),
            "compress_parallel must be byte-identical to compress at {threads} thread(s)"
        );
        let restored: Field<T> = with_pool(threads, || parallel.decompress_parallel()).unwrap();
        assert_eq!(
            restored,
            serial.decompress().unwrap(),
            "decompress_parallel must match serial at {threads} thread(s)"
        );
    }
}

#[test]
fn f32_archives_byte_identical_across_thread_counts() {
    assert_archive_deterministic(&f32_field(Dims::d3(32, 28, 36)), 1e-3);
    // Odd dims exercise ragged block geometry.
    assert_archive_deterministic(&f32_field(Dims::d3(17, 23, 19)), 1e-2);
}

#[test]
fn f64_archives_byte_identical_across_thread_counts() {
    assert_archive_deterministic(&f64_field(Dims::d3(24, 24, 24)), 0.5);
    assert_archive_deterministic(&f64_field(Dims::d2(40, 36)), 0.5);
}

#[test]
fn four_level_archives_byte_identical_across_thread_counts() {
    let field = f32_field(Dims::d3(33, 31, 35));
    let compressor = StzCompressor::new(StzConfig::three_level(1e-2).with_levels(4));
    let serial = compressor.compress(&field).unwrap();
    for threads in WIDTHS {
        let parallel = with_pool(threads, || compressor.compress_parallel(&field)).unwrap();
        assert_eq!(serial.as_bytes(), parallel.as_bytes(), "{threads} thread(s)");
    }
}

#[test]
fn progressive_refinement_matches_serial_at_every_width() {
    let field = f32_field(Dims::d3(24, 24, 24));
    let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&field).unwrap();
    for threads in WIDTHS {
        with_pool(threads, || {
            let mut serial = archive.progressive();
            let mut parallel = archive.progressive().parallel(true);
            while let Some(expect) = serial.next_level().unwrap() {
                let got = parallel.next_level().unwrap().unwrap();
                assert_eq!(got, expect, "{threads} thread(s)");
            }
            assert!(parallel.is_complete());
        });
    }
}

#[test]
fn pipelined_containers_byte_identical_across_thread_counts() {
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let pack = |threads: usize| -> Vec<u8> {
        pack_pipelined(Vec::new(), (0..6u32).collect::<Vec<u32>>(), threads, |i| {
            let field = f32_field(Dims::d3(16 + i as usize % 3, 16, 16));
            Ok((format!("step{i}"), compressor.compress(&field)?.into()))
        })
        .unwrap()
    };
    let sequential = pack(1);
    for threads in [2, 4, 8] {
        assert_eq!(pack(threads), sequential, "{threads} thread(s)");
    }
}
