//! Determinism suite for the multi-threaded compression runtime.
//!
//! The work-stealing pool (`crates/shims/rayon`) promises that parallel
//! execution is **byte-identical** to sequential execution at every thread
//! count: chunk boundaries depend only on input length and results are
//! reassembled in input order. These tests pin that promise across the
//! stack — archives, decompressions, progressive refinement, and pipelined
//! containers — for both element types.

use stz::prelude::*;
use stz::stream::pack_pipelined;

const WIDTHS: [usize; 3] = [1, 2, 8];

fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(op)
}

fn f32_field(dims: Dims) -> Field<f32> {
    Field::from_fn(dims, |z, y, x| {
        let (zf, yf, xf) = (z as f32 * 0.21, y as f32 * 0.13, x as f32 * 0.17);
        zf.sin() * yf.cos() + (xf + yf).sin() + 0.3 * zf
    })
}

fn f64_field(dims: Dims) -> Field<f64> {
    Field::from_fn(dims, |z, y, x| ((z * 3 + y * 5 + x * 7) as f64 * 0.01).sin() * 1e4)
}

fn assert_archive_deterministic<T: Scalar>(field: &Field<T>, eb: f64) {
    let compressor = StzCompressor::new(StzConfig::three_level(eb));
    let serial = compressor.compress(field).unwrap();
    for threads in WIDTHS {
        let parallel = with_pool(threads, || compressor.compress_parallel(field)).unwrap();
        assert_eq!(
            serial.as_bytes(),
            parallel.as_bytes(),
            "compress_parallel must be byte-identical to compress at {threads} thread(s)"
        );
        let restored: Field<T> = with_pool(threads, || parallel.decompress_parallel()).unwrap();
        assert_eq!(
            restored,
            serial.decompress().unwrap(),
            "decompress_parallel must match serial at {threads} thread(s)"
        );
    }
}

#[test]
fn f32_archives_byte_identical_across_thread_counts() {
    assert_archive_deterministic(&f32_field(Dims::d3(32, 28, 36)), 1e-3);
    // Odd dims exercise ragged block geometry.
    assert_archive_deterministic(&f32_field(Dims::d3(17, 23, 19)), 1e-2);
}

#[test]
fn f64_archives_byte_identical_across_thread_counts() {
    assert_archive_deterministic(&f64_field(Dims::d3(24, 24, 24)), 0.5);
    assert_archive_deterministic(&f64_field(Dims::d2(40, 36)), 0.5);
}

#[test]
fn four_level_archives_byte_identical_across_thread_counts() {
    let field = f32_field(Dims::d3(33, 31, 35));
    let compressor = StzCompressor::new(StzConfig::three_level(1e-2).with_levels(4));
    let serial = compressor.compress(&field).unwrap();
    for threads in WIDTHS {
        let parallel = with_pool(threads, || compressor.compress_parallel(&field)).unwrap();
        assert_eq!(serial.as_bytes(), parallel.as_bytes(), "{threads} thread(s)");
    }
}

#[test]
fn progressive_refinement_matches_serial_at_every_width() {
    let field = f32_field(Dims::d3(24, 24, 24));
    let archive = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&field).unwrap();
    for threads in WIDTHS {
        with_pool(threads, || {
            let mut serial = archive.progressive();
            let mut parallel = archive.progressive().parallel(true);
            while let Some(expect) = serial.next_level().unwrap() {
                let got = parallel.next_level().unwrap().unwrap();
                assert_eq!(got, expect, "{threads} thread(s)");
            }
            assert!(parallel.is_complete());
        });
    }
}

// ---------------------------------------------------------------------------
// Lane-width identity: the SIMD dispatch (ARCHITECTURE.md invariant 8).
//
// Every available `stz_simd` lane must produce byte-identical compressed
// streams and decoded fields to the scalar reference — across all five
// codecs, both element types, and full / progressive / ROI decode paths.
// `override_lane` pins the lane; these helpers always restore the previous
// override so the rest of the suite keeps its configured dispatch.
// ---------------------------------------------------------------------------

/// The lane override is process-global; serialize the lane tests so one
/// test's scalar baseline can't be computed under another's vector pin.
static LANE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn with_lane<R>(lane: stz::simd::Lane, op: impl FnOnce() -> R) -> R {
    let prev = stz::simd::override_lane(Some(lane));
    let r = op();
    stz::simd::override_lane(prev);
    r
}

fn vector_lanes() -> Vec<stz::simd::Lane> {
    stz::simd::available_lanes().into_iter().filter(|&l| l != stz::simd::Lane::Scalar).collect()
}

#[test]
fn all_codecs_byte_identical_across_lanes() {
    use stz::backend::registry;
    let _guard = LANE_LOCK.lock().unwrap();
    let f32_field = f32_field(Dims::d3(20, 18, 22));
    let f64_field = f64_field(Dims::d3(16, 20, 14));
    for codec in registry().all() {
        let (b32, b64) = with_lane(stz::simd::Lane::Scalar, || {
            let b32 = codec.compress_f32(&f32_field, 1e-3).unwrap();
            let b64 = codec.compress_f64(&f64_field, 0.5).unwrap();
            (b32, b64)
        });
        let (d32, d64) = with_lane(stz::simd::Lane::Scalar, || {
            let d32: Field<f32> = codec.decompress_f32(&b32).unwrap();
            let d64: Field<f64> = codec.decompress_f64(&b64).unwrap();
            (d32, d64)
        });
        for lane in vector_lanes() {
            with_lane(lane, || {
                assert_eq!(
                    codec.compress_f32(&f32_field, 1e-3).unwrap(),
                    b32,
                    "{} f32 stream differs on {lane}",
                    codec.name()
                );
                assert_eq!(
                    codec.compress_f64(&f64_field, 0.5).unwrap(),
                    b64,
                    "{} f64 stream differs on {lane}",
                    codec.name()
                );
                let r32: Field<f32> = codec.decompress_f32(&b32).unwrap();
                let r64: Field<f64> = codec.decompress_f64(&b64).unwrap();
                assert_eq!(r32, d32, "{} f32 field differs on {lane}", codec.name());
                assert_eq!(r64, d64, "{} f64 field differs on {lane}", codec.name());
            });
        }
    }
}

#[test]
fn progressive_and_roi_byte_identical_across_lanes() {
    let _guard = LANE_LOCK.lock().unwrap();
    let field = f32_field(Dims::d3(28, 26, 30));
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let archive = with_lane(stz::simd::Lane::Scalar, || compressor.compress(&field)).unwrap();
    let region = Region::d3(3..17, 2..19, 5..21);
    let (levels, roi) = with_lane(stz::simd::Lane::Scalar, || {
        let mut p = archive.progressive();
        let mut levels: Vec<Field<f32>> = Vec::new();
        while let Some(l) = p.next_level().unwrap() {
            levels.push(l);
        }
        let roi: Field<f32> = archive.decompress_region(&region).unwrap();
        (levels, roi)
    });
    for lane in vector_lanes() {
        with_lane(lane, || {
            assert_eq!(compressor.compress(&field).unwrap().as_bytes(), archive.as_bytes());
            let mut p = archive.progressive();
            for (i, expect) in levels.iter().enumerate() {
                let got = p.next_level().unwrap().unwrap();
                assert_eq!(&got, expect, "progressive level {i} differs on {lane}");
            }
            assert!(p.next_level().unwrap().is_none());
            let got: Field<f32> = archive.decompress_region(&region).unwrap();
            assert_eq!(got, roi, "ROI decode differs on {lane}");
        });
    }
}

#[test]
fn f64_progressive_and_roi_byte_identical_across_lanes() {
    let _guard = LANE_LOCK.lock().unwrap();
    let field = f64_field(Dims::d3(24, 22, 26));
    let compressor = StzCompressor::new(StzConfig::three_level(0.25));
    let archive = with_lane(stz::simd::Lane::Scalar, || compressor.compress(&field)).unwrap();
    let region = Region::d3(0..15, 4..18, 3..20);
    let (full, roi) = with_lane(stz::simd::Lane::Scalar, || {
        let full: Field<f64> = archive.decompress().unwrap();
        let roi: Field<f64> = archive.decompress_region(&region).unwrap();
        (full, roi)
    });
    for lane in vector_lanes() {
        with_lane(lane, || {
            assert_eq!(compressor.compress(&field).unwrap().as_bytes(), archive.as_bytes());
            let f: Field<f64> = archive.decompress().unwrap();
            let r: Field<f64> = archive.decompress_region(&region).unwrap();
            assert_eq!(f, full, "full decode differs on {lane}");
            assert_eq!(r, roi, "ROI decode differs on {lane}");
        });
    }
}

#[test]
fn pipelined_containers_byte_identical_across_thread_counts() {
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let pack = |threads: usize| -> Vec<u8> {
        pack_pipelined(Vec::new(), (0..6u32).collect::<Vec<u32>>(), threads, |i| {
            let field = f32_field(Dims::d3(16 + i as usize % 3, 16, 16));
            Ok((format!("step{i}"), compressor.compress(&field)?.into()))
        })
        .unwrap()
    };
    let sequential = pack(1);
    for threads in [2, 4, 8] {
        assert_eq!(pack(threads), sequential, "{threads} thread(s)");
    }
}
