//! Property tests of the backend contract: for **every** registered codec,
//! `max |x - x'| <= eps` — on random fields of random shapes in both
//! element types, on all-constant fields, and on NaN-free adversarial
//! slabs (white noise, isolated spikes, sign-alternating checkerboards)
//! where prediction-based engines get no help from smoothness.

use proptest::prelude::*;
use stz::backend::{registry, BackendScalar, Codec, ErrorBound};
use stz::data::metrics;
use stz::prelude::*;

/// Small random dims (kept tiny: each case runs five full compressions).
fn dims_strategy() -> impl Strategy<Value = Dims> {
    (1usize..=10, 1usize..=10, 1usize..=10).prop_map(|(z, y, x)| Dims::d3(z, y, x))
}

/// Uniform pseudo-random value in `[-1, 1)` from a hash of the coordinates.
fn noise(seed: u64, z: usize, y: usize, x: usize) -> f64 {
    let h = stz::data::synth::noise::hash64(
        seed ^ ((z as u64) << 40) ^ ((y as u64) << 20) ^ (x as u64),
    );
    (h >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// Compress/decompress through the registry and assert the bound.
fn assert_bound<T: BackendScalar>(codec: &dyn Codec, field: &Field<T>, eb: f64, what: &str) {
    let bytes = stz::backend::compress(codec, field, &ErrorBound::Absolute(eb))
        .unwrap_or_else(|e| panic!("{}/{what}: compress failed: {e}", codec.name()));
    let recon: Field<T> = stz::backend::decompress(codec, &bytes)
        .unwrap_or_else(|e| panic!("{}/{what}: decompress failed: {e}", codec.name()));
    let err = metrics::max_abs_error(field, &recon);
    assert!(
        err <= eb * (1.0 + 1e-6),
        "{}/{what}: err {err} > eb {eb} on {:?}",
        codec.name(),
        field.dims()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_backend_error_bounded_f32(
        dims in dims_strategy(),
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        let f = Field::from_fn(dims, |z, y, x| {
            noise(seed, z, y, x) as f32 + ((z + y + x) as f32 * 0.1).sin()
        });
        for codec in registry().all() {
            assert_bound(codec, &f, eb, "random-f32");
        }
    }

    #[test]
    fn every_backend_error_bounded_f64(
        dims in dims_strategy(),
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        // Large offset + small signal: stresses absolute-bound handling in
        // double precision (the WarpX regime, where fields sit at ~1e7).
        let f = Field::from_fn(dims, |z, y, x| {
            1.0e6 * eb + noise(seed, z, y, x) + (x as f64 * 0.2).cos()
        });
        for codec in registry().all() {
            assert_bound(codec, &f, eb, "random-f64");
        }
    }

    #[test]
    fn every_backend_handles_constant_fields(
        dims in dims_strategy(),
        value in -100.0f64..100.0,
        eb_exp in -6i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp);
        let f32_field = Field::from_fn(dims, |_, _, _| value as f32);
        let f64_field = Field::from_fn(dims, |_, _, _| value);
        for codec in registry().all() {
            assert_bound(codec, &f32_field, eb, "constant-f32");
            assert_bound(codec, &f64_field, eb, "constant-f64");
        }
    }
}

/// Adversarial NaN-free slabs: structures chosen to defeat each engine's
/// prediction model rather than to resemble simulation output.
fn adversarial_slabs(seed: u64) -> Vec<(&'static str, Field<f32>)> {
    let dims = Dims::d3(9, 11, 13);
    vec![
        // Dense white noise — no spatial correlation at all.
        ("white-noise", Field::from_fn(dims, |z, y, x| noise(seed, z, y, x) as f32 * 50.0)),
        // Mostly-zero field with isolated large spikes (escape-path stress).
        (
            "spikes",
            Field::from_fn(
                dims,
                |z, y, x| {
                    if noise(seed ^ 1, z, y, x) > 0.95 {
                        1.0e4
                    } else {
                        0.0
                    }
                },
            ),
        ),
        // Sign-alternating checkerboard at the Nyquist frequency.
        (
            "checkerboard",
            Field::from_fn(dims, |z, y, x| if (z + y + x) % 2 == 0 { 1.0 } else { -1.0 }),
        ),
        // A step discontinuity (interpolators overshoot at edges).
        ("step", Field::from_fn(dims, |_, _, x| if x < 6 { -25.0 } else { 25.0 })),
        // Extreme-magnitude but finite values (exponent-handling stress).
        (
            "large-magnitude",
            Field::from_fn(dims, |z, y, x| (noise(seed ^ 2, z, y, x) as f32) * 1.0e30),
        ),
    ]
}

#[test]
fn every_backend_error_bounded_on_adversarial_slabs() {
    for (what, f) in adversarial_slabs(2025) {
        let (lo, hi) = f.value_range();
        let range = hi - lo;
        // A relative bound keeps eps meaningful across the wildly different
        // amplitudes of the slabs.
        let eb = if range > 0.0 { 1e-3 * range } else { 1e-3 };
        for codec in registry().all() {
            assert_bound(codec, &f, eb, what);
        }
    }
}

#[test]
fn every_backend_error_bounded_on_adversarial_f64_slabs() {
    let dims = Dims::d3(7, 9, 11);
    let slabs: Vec<(&str, Field<f64>)> = vec![
        ("white-noise-f64", Field::from_fn(dims, |z, y, x| noise(7, z, y, x) * 1.0e8)),
        (
            "checkerboard-f64",
            Field::from_fn(dims, |z, y, x| if (z + y + x) % 2 == 0 { 1.0e-6 } else { -1.0e-6 }),
        ),
    ];
    for (what, f) in slabs {
        let (lo, hi) = f.value_range();
        let eb = 1e-3 * (hi - lo).max(1e-12);
        for codec in registry().all() {
            assert_bound(codec, &f, eb, what);
        }
    }
}
