//! Cross-crate integration: every compressor honours its error bound on
//! every (miniaturized) evaluation dataset, in both element types.

use stz::data::{metrics, Dataset, DatasetField};
use stz::prelude::*;

const REL_EB: f64 = 1e-3;

fn check_f32(
    name: &str,
    codec: &str,
    field: &Field<f32>,
    bytes: &[u8],
    recon: &Field<f32>,
    eb: f64,
) {
    assert_eq!(recon.dims(), field.dims(), "{name}/{codec} dims");
    let err = metrics::max_abs_error(field, recon);
    assert!(err <= eb * (1.0 + 1e-6), "{name}/{codec}: err {err} > eb {eb}");
    assert!(bytes.len() < field.nbytes(), "{name}/{codec}: no compression ({} bytes)", bytes.len());
}

fn all_fields() -> Vec<(Dataset, DatasetField)> {
    Dataset::all()
        .into_iter()
        .map(|d| {
            let dims = d.scaled_dims(16);
            (d, d.generate(dims, 77))
        })
        .collect()
}

#[test]
fn stz_bounds_on_all_datasets() {
    for (d, field) in all_fields() {
        match field {
            DatasetField::F32(f) => {
                let (lo, hi) = f.value_range();
                let eb = REL_EB * (hi - lo);
                let a = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
                let r = a.decompress().unwrap();
                check_f32(d.name(), "STZ", &f, a.as_bytes(), &r, eb);
            }
            DatasetField::F64(f) => {
                let (lo, hi) = f.value_range();
                let eb = REL_EB * (hi - lo);
                let a = StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap();
                let r = a.decompress().unwrap();
                let err = metrics::max_abs_error(&f, &r);
                assert!(err <= eb, "{}: err {err}", d.name());
            }
        }
    }
}

#[test]
fn sz3_bounds_on_all_datasets() {
    for (d, field) in all_fields() {
        if let DatasetField::F32(f) = field {
            let (lo, hi) = f.value_range();
            let eb = REL_EB * (hi - lo);
            let bytes = stz::sz3::compress(&f, &stz::sz3::Sz3Config::absolute(eb));
            let r: Field<f32> = stz::sz3::decompress(&bytes).unwrap();
            check_f32(d.name(), "SZ3", &f, &bytes, &r, eb);
        }
    }
}

#[test]
fn sperr_bounds_on_all_datasets() {
    for (d, field) in all_fields() {
        if let DatasetField::F32(f) = field {
            let (lo, hi) = f.value_range();
            let eb = REL_EB * (hi - lo);
            let bytes = stz::sperr::compress(&f, &stz::sperr::SperrConfig::new(eb));
            let r: Field<f32> = stz::sperr::decompress(&bytes).unwrap();
            check_f32(d.name(), "SPERR", &f, &bytes, &r, eb);
        }
    }
}

#[test]
fn zfp_bounds_on_all_datasets() {
    for (d, field) in all_fields() {
        if let DatasetField::F32(f) = field {
            let (lo, hi) = f.value_range();
            let eb = REL_EB * (hi - lo);
            let bytes = stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(eb));
            let r: Field<f32> = stz::zfp::decompress(&bytes).unwrap();
            check_f32(d.name(), "ZFP", &f, &bytes, &r, eb);
        }
    }
}

#[test]
fn mgard_bounds_on_all_datasets() {
    for (d, field) in all_fields() {
        if let DatasetField::F32(f) = field {
            let (lo, hi) = f.value_range();
            let eb = REL_EB * (hi - lo);
            let bytes = stz::mgard::compress(&f, &stz::mgard::MgardConfig::new(eb));
            let r: Field<f32> = stz::mgard::decompress(&bytes).unwrap();
            check_f32(d.name(), "MGARD", &f, &bytes, &r, eb);
        }
    }
}

#[test]
fn warpx_f64_roundtrips_through_every_codec() {
    let f = stz::data::synth::warpx_like(Dims::d3(16, 16, 96), 5);
    let (lo, hi) = f.value_range();
    let eb = REL_EB * (hi - lo);
    let pairs: Vec<(&str, Vec<u8>, Field<f64>)> = vec![
        (
            "STZ",
            StzCompressor::new(StzConfig::three_level(eb)).compress(&f).unwrap().into_bytes(),
            StzCompressor::new(StzConfig::three_level(eb))
                .compress(&f)
                .unwrap()
                .decompress()
                .unwrap(),
        ),
        ("SZ3", stz::sz3::compress(&f, &stz::sz3::Sz3Config::absolute(eb)), {
            let b = stz::sz3::compress(&f, &stz::sz3::Sz3Config::absolute(eb));
            stz::sz3::decompress(&b).unwrap()
        }),
        ("SPERR", stz::sperr::compress(&f, &stz::sperr::SperrConfig::new(eb)), {
            let b = stz::sperr::compress(&f, &stz::sperr::SperrConfig::new(eb));
            stz::sperr::decompress(&b).unwrap()
        }),
        ("ZFP", stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(eb)), {
            let b = stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(eb));
            stz::zfp::decompress(&b).unwrap()
        }),
        ("MGARD", stz::mgard::compress(&f, &stz::mgard::MgardConfig::new(eb)), {
            let b = stz::mgard::compress(&f, &stz::mgard::MgardConfig::new(eb));
            stz::mgard::decompress(&b).unwrap()
        }),
    ];
    for (name, bytes, recon) in pairs {
        let err = metrics::max_abs_error(&f, &recon);
        assert!(err <= eb * (1.0 + 1e-9), "{name}: err {err} > {eb}");
        assert!(bytes.len() < f.nbytes(), "{name} did not compress");
    }
}

#[test]
fn archives_are_mutually_unreadable() {
    // Every codec must reject the other codecs' archives cleanly.
    let f = stz::data::synth::miranda_like(Dims::d3(12, 12, 12), 1);
    let stz_bytes =
        StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap().into_bytes();
    let sz3_bytes = stz::sz3::compress(&f, &stz::sz3::Sz3Config::absolute(1e-3));
    let zfp_bytes = stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(1e-3));
    assert!(stz::sz3::decompress::<f32>(&stz_bytes).is_err());
    assert!(stz::zfp::decompress::<f32>(&sz3_bytes).is_err());
    assert!(stz::sperr::decompress::<f32>(&zfp_bytes).is_err());
    assert!(stz::mgard::decompress::<f32>(&stz_bytes).is_err());
    assert!(StzArchive::<f32>::from_bytes(sz3_bytes).is_err());
}
