//! Cross-crate integration: **every registered backend** honours its error
//! bound on every (miniaturized) evaluation dataset, in **both** element
//! types.
//!
//! The matrix is driven by the `stz-backend` registry, so a newly
//! registered codec is covered automatically — and no codec can be
//! silently skipped the way the pre-registry version of this file skipped
//! the baselines' f64 coverage.

use stz::backend::{registry, BackendScalar, Codec, ErrorBound};
use stz::data::{metrics, Dataset, DatasetField};
use stz::prelude::*;

const REL_EB: f64 = 1e-3;

fn all_fields() -> Vec<(Dataset, DatasetField)> {
    Dataset::all()
        .into_iter()
        .map(|d| {
            let dims = d.scaled_dims(16);
            (d, d.generate(dims, 77))
        })
        .collect()
}

/// Compress + decompress `field` with `codec` at a value-range-relative
/// bound and assert the three invariants of the backend contract: dims
/// survive, the point-wise bound holds, and the archive actually shrank.
fn assert_roundtrip<T: BackendScalar>(codec: &dyn Codec, label: &str, field: &Field<T>) {
    let (lo, hi) = field.value_range();
    let eb = REL_EB * (hi - lo);
    let bytes = stz::backend::compress(codec, field, &ErrorBound::Absolute(eb))
        .unwrap_or_else(|e| panic!("{label}: compression failed: {e}"));
    let recon: Field<T> = stz::backend::decompress(codec, &bytes)
        .unwrap_or_else(|e| panic!("{label}: decompression failed: {e}"));
    assert_eq!(recon.dims(), field.dims(), "{label}: dims");
    let err = metrics::max_abs_error(field, &recon);
    assert!(err <= eb * (1.0 + 1e-6), "{label}: err {err} > eb {eb}");
    assert!(bytes.len() < field.nbytes(), "{label}: no compression ({} bytes)", bytes.len());
}

#[test]
fn every_backend_bounds_on_all_datasets() {
    for codec in registry().all() {
        for (d, field) in all_fields() {
            let label = format!("{}/{}", d.name(), codec.name());
            match &field {
                DatasetField::F32(f) => assert_roundtrip(codec, &label, f),
                DatasetField::F64(f) => assert_roundtrip(codec, &label, f),
            }
        }
    }
}

#[test]
fn every_backend_roundtrips_f64_warpx() {
    // WarpX is the paper's only f64 dataset; give it explicit coverage at
    // its aspect ratio on top of the matrix above.
    let f = stz::data::synth::warpx_like(Dims::d3(16, 16, 96), 5);
    for codec in registry().all() {
        assert_roundtrip(codec, codec.name(), &f);
    }
}

#[test]
fn every_backend_roundtrips_low_dimensional_fields() {
    // 1-D and 2-D grids exercise each engine's dimension-dependent code
    // paths (ZFP's 4^d blocks, the wavelet/multigrid level counts).
    let d1: Field<f32> = Field::from_fn(Dims::d1(257), |_, _, x| (x as f32 * 0.05).sin());
    let d2: Field<f32> =
        Field::from_fn(Dims::d2(33, 49), |_, y, x| (y as f32 * 0.2).cos() + x as f32 * 0.01);
    for codec in registry().all() {
        assert_roundtrip(codec, &format!("{}/1d", codec.name()), &d1);
        assert_roundtrip(codec, &format!("{}/2d", codec.name()), &d2);
    }
}

#[test]
fn archives_are_mutually_unreadable() {
    // Every codec must reject every other codec's archives cleanly — the
    // registry relies on distinct magics for sniffing.
    let f = stz::data::synth::miranda_like(Dims::d3(12, 12, 12), 1);
    let archives: Vec<(&str, Vec<u8>)> =
        registry().all().map(|c| (c.name(), c.compress_f32(&f, 1e-3).expect("compress"))).collect();
    for consumer in registry().all() {
        for (producer, bytes) in &archives {
            if *producer == consumer.name() {
                continue;
            }
            assert!(
                consumer.decompress_f32(bytes).is_err(),
                "{} decoded a {} archive",
                consumer.name(),
                producer
            );
            assert!(
                consumer.decompress_f64(bytes).is_err(),
                "{} decoded a {} archive as f64",
                consumer.name(),
                producer
            );
        }
    }
}

#[test]
fn wrong_element_type_rejected() {
    // An f32 archive must not decode as f64 (and vice versa): the type tag
    // is part of every engine's header.
    let f = stz::data::synth::miranda_like(Dims::d3(10, 10, 10), 2);
    for codec in registry().all() {
        let bytes = codec.compress_f32(&f, 1e-3).expect("compress");
        assert!(
            codec.decompress_f64(&bytes).is_err(),
            "{}: f32 archive decoded as f64",
            codec.name()
        );
    }
}
