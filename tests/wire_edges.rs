//! Boundary tests for the two untrusted-input gates the fuzz harnesses
//! exercise hardest:
//!
//! * the STZP frame-length prefix — every edge of the
//!   [`MAX_FRAME_PAYLOAD`] cap (0, cap−1, cap, cap+1, `u32::MAX`) crafted
//!   as raw 16-byte headers, proving exactly where the gate sits: at-cap
//!   lengths pass the header check and fail only as truncated payloads,
//!   one-past-cap is refused before any payload byte is read;
//! * [`EntryDesc::from_wire`] — `INSPECT_OK` rows from an untrusted peer
//!   must reject ndim/extent combinations that [`Dims`]' own constructor
//!   would assert on, and accept every consistent 1-D/2-D/3-D shape.

use stz::access::{AccessError, EntryDesc};
use stz::serve::proto::{self, FrameType, MAX_FRAME_PAYLOAD};
use stz::serve::{EntryInfo, ServeError};

/// A valid empty LIST frame whose length bytes we patch per edge case.
fn empty_frame() -> Vec<u8> {
    let mut buf = Vec::new();
    proto::write_frame(&mut buf, FrameType::List, &[]).expect("vec write");
    buf
}

fn with_len(len: u32) -> Vec<u8> {
    let mut frame = empty_frame();
    frame[8..12].copy_from_slice(&len.to_le_bytes());
    frame
}

#[test]
fn frame_len_zero_is_a_valid_frame() {
    let frame = empty_frame();
    let got = proto::read_frame(&mut &frame[..]).expect("read").expect("some");
    assert_eq!(got.kind, FrameType::List as u8);
    assert!(got.payload.is_empty());
}

#[test]
fn frame_len_at_cap_passes_the_header_gate() {
    // cap−1 and cap are legal declarations; with no payload bytes behind
    // them the failure must be "truncated payload" — i.e. *after* the
    // length gate — and reading must not reserve the declared size up
    // front (the chunked reader tops out at 1 MiB before the first read).
    for len in [MAX_FRAME_PAYLOAD - 1, MAX_FRAME_PAYLOAD] {
        let frame = with_len(len);
        match proto::read_frame(&mut &frame[..]) {
            Err(ServeError::Protocol(msg)) => {
                assert!(msg.contains("truncated frame payload"), "len {len}: {msg}")
            }
            other => panic!("len {len}: expected truncated-payload error, got {other:?}"),
        }
    }
}

#[test]
fn frame_len_past_cap_is_rejected_at_the_header() {
    for len in [MAX_FRAME_PAYLOAD + 1, u32::MAX] {
        let frame = with_len(len);
        match proto::read_frame(&mut &frame[..]) {
            Err(ServeError::Protocol(msg)) => {
                assert!(msg.contains("exceeds"), "len {len}: {msg}")
            }
            other => panic!("len {len}: expected length-cap error, got {other:?}"),
        }
    }
}

#[test]
fn frame_len_gate_holds_even_with_trailing_bytes() {
    // An over-cap declaration followed by real bytes must still be
    // refused from the header alone — the reader may not consume or
    // buffer any of the declared payload.
    let mut frame = with_len(u32::MAX);
    frame.extend_from_slice(&[0xAB; 64]);
    assert!(matches!(proto::read_frame(&mut &frame[..]), Err(ServeError::Protocol(_))));
}

fn info(ndim: u8, dims: [u64; 3]) -> EntryInfo {
    EntryInfo {
        name: "t".into(),
        codec_id: stz::backend::id::STZ,
        type_tag: 0,
        ndim,
        dims,
        eb: 1e-3,
        compressed_len: 128,
        payload_crc: 0,
        sections: 1,
        levels: 1,
        interp: 1,
        level_bytes: vec![128],
    }
}

#[test]
fn from_wire_accepts_consistent_shapes() {
    for (ndim, dims) in [(1u8, [1u64, 1, 9]), (2, [1, 4, 9]), (3, [2, 4, 9])] {
        let desc = EntryDesc::from_wire(0, &info(ndim, dims))
            .unwrap_or_else(|e| panic!("ndim {ndim} dims {dims:?}: {e}"));
        assert_eq!(desc.dims.ndim(), ndim);
        assert_eq!([desc.dims.nz() as u64, desc.dims.ny() as u64, desc.dims.nx() as u64], dims);
    }
}

#[test]
fn from_wire_rejects_inconsistent_ndim() {
    // Shapes that Dims::from_parts would assert on must come back as
    // protocol errors instead of panics: that exact panic was reachable
    // from hostile codec headers before the fuzzer pinned it.
    let hostile = [
        (1u8, [2u64, 1, 9]), // 1-D with nz != 1
        (1, [1, 3, 9]),      // 1-D with ny != 1
        (2, [5, 4, 9]),      // 2-D with nz != 1
        (0, [1, 1, 1]),      // no axes
        (4, [2, 2, 2]),      // too many axes
    ];
    for (ndim, dims) in hostile {
        match EntryDesc::from_wire(0, &info(ndim, dims)) {
            Err(AccessError::Protocol(msg)) => {
                assert!(msg.contains("dims"), "ndim {ndim}: {msg}")
            }
            other => panic!("ndim {ndim} dims {dims:?}: expected Protocol error, got {other:?}"),
        }
    }
}

#[test]
fn from_wire_rejects_zero_extents() {
    for dims in [[0u64, 4, 9], [2, 0, 9], [2, 4, 0]] {
        assert!(
            EntryDesc::from_wire(0, &info(3, dims)).is_err(),
            "zero extent {dims:?} must be refused"
        );
    }
}
