//! Property-based tests (proptest) for the core invariants:
//!
//! * every compressor is error-bounded for arbitrary fields and bounds;
//! * partition/reassembly is the identity for arbitrary dims;
//! * progressive previews equal downsampled full reconstructions;
//! * ROI decompression equals the extracted region of full decompression;
//! * Huffman blocks round-trip arbitrary symbol streams.

use proptest::prelude::*;
use stz::data::metrics;
use stz::prelude::*;
use stz_field::partition::{partition_stride2, reassemble_stride2};

/// Small random dims (kept tiny: each case runs a full compression).
fn dims_strategy() -> impl Strategy<Value = Dims> {
    (1usize..=12, 1usize..=12, 1usize..=12).prop_map(|(z, y, x)| Dims::d3(z, y, x))
}

/// A deterministic pseudo-random field from a seed.
fn field_from_seed(dims: Dims, seed: u64, amplitude: f64) -> Field<f32> {
    Field::from_fn(dims, |z, y, x| {
        let h = stz::data::synth::noise::hash64(
            seed ^ ((z as u64) << 40) ^ ((y as u64) << 20) ^ (x as u64),
        );
        ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32 * amplitude as f32
            + ((z + y + x) as f32 * 0.1).sin()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stz_error_bounded(
        dims in dims_strategy(),
        seed in any::<u64>(),
        eb_exp in -4i32..-1,
        levels in 2u8..=3,
    ) {
        let eb = 10f64.powi(eb_exp);
        let f = field_from_seed(dims, seed, 1.0);
        let a = StzCompressor::new(StzConfig::three_level(eb).with_levels(levels))
            .compress(&f)
            .unwrap();
        let r = a.decompress().unwrap();
        prop_assert!(metrics::max_abs_error(&f, &r) <= eb);
    }

    #[test]
    fn sz3_error_bounded(dims in dims_strategy(), seed in any::<u64>(), eb_exp in -4i32..-1) {
        let eb = 10f64.powi(eb_exp);
        let f = field_from_seed(dims, seed, 1.0);
        let bytes = stz::sz3::compress(&f, &stz::sz3::Sz3Config::absolute(eb));
        let r: Field<f32> = stz::sz3::decompress(&bytes).unwrap();
        prop_assert!(metrics::max_abs_error(&f, &r) <= eb);
    }

    #[test]
    fn zfp_error_bounded(dims in dims_strategy(), seed in any::<u64>(), eb_exp in -4i32..-1) {
        let eb = 10f64.powi(eb_exp);
        let f = field_from_seed(dims, seed, 1.0);
        let bytes = stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(eb));
        let r: Field<f32> = stz::zfp::decompress(&bytes).unwrap();
        prop_assert!(metrics::max_abs_error(&f, &r) <= eb);
    }

    #[test]
    fn sperr_error_bounded(dims in dims_strategy(), seed in any::<u64>(), eb_exp in -4i32..-1) {
        let eb = 10f64.powi(eb_exp);
        let f = field_from_seed(dims, seed, 1.0);
        let bytes = stz::sperr::compress(&f, &stz::sperr::SperrConfig::new(eb));
        let r: Field<f32> = stz::sperr::decompress(&bytes).unwrap();
        prop_assert!(metrics::max_abs_error(&f, &r) <= eb * (1.0 + 1e-6));
    }

    #[test]
    fn mgard_error_bounded(dims in dims_strategy(), seed in any::<u64>(), eb_exp in -4i32..-1) {
        let eb = 10f64.powi(eb_exp);
        let f = field_from_seed(dims, seed, 1.0);
        let bytes = stz::mgard::compress(&f, &stz::mgard::MgardConfig::new(eb));
        let r: Field<f32> = stz::mgard::decompress(&bytes).unwrap();
        prop_assert!(metrics::max_abs_error(&f, &r) <= eb);
    }

    #[test]
    fn partition_reassemble_identity(dims in dims_strategy(), seed in any::<u64>()) {
        let f = field_from_seed(dims, seed, 100.0);
        let parts = partition_stride2(&f);
        let back = reassemble_stride2(dims, &parts);
        prop_assert_eq!(f, back);
    }

    #[test]
    fn progressive_equals_downsample(dims in dims_strategy(), seed in any::<u64>()) {
        let f = field_from_seed(dims, seed, 1.0);
        let a = StzCompressor::new(StzConfig::three_level(1e-2)).compress(&f).unwrap();
        let full = a.decompress().unwrap();
        for k in 1..=3u8 {
            let p = a.decompress_level(k).unwrap();
            prop_assert_eq!(p, full.downsample(1usize << (3 - k)));
        }
    }

    #[test]
    fn roi_equals_extracted_full(
        dims in (4usize..=12, 4usize..=12, 4usize..=12).prop_map(|(z, y, x)| Dims::d3(z, y, x)),
        seed in any::<u64>(),
        frac in (0u8..8, 0u8..8, 0u8..8),
    ) {
        let f = field_from_seed(dims, seed, 1.0);
        let a = StzCompressor::new(StzConfig::three_level(1e-2)).compress(&f).unwrap();
        let full = a.decompress().unwrap();
        // Region derived from fractions of the grid extents.
        let pick = |n: usize, k: u8| {
            let start = (n - 1) * (k as usize) / 8;
            start..(start + n.div_ceil(2)).min(n)
        };
        let region = Region::d3(
            pick(dims.nz(), frac.0),
            pick(dims.ny(), frac.1),
            pick(dims.nx(), frac.2),
        );
        prop_assert_eq!(a.decompress_region(&region).unwrap(), full.extract_region(&region));
    }

    #[test]
    fn huffman_roundtrip(symbols in proptest::collection::vec(0u32..5000, 0..4000)) {
        let block = stz::codec::huffman::encode_block(&symbols);
        prop_assert_eq!(stz::codec::huffman::decode_block(&block).unwrap(), symbols);
    }

    #[test]
    fn quantizer_bound_holds(
        actual in -1e6f64..1e6,
        pred in -1e6f64..1e6,
        eb_exp in -6i32..2,
    ) {
        let eb = 10f64.powi(eb_exp);
        let q = stz::codec::LinearQuantizer::new(eb, 1 << 15);
        if let stz::codec::QuantOutcome::Code { symbol, reconstructed } = q.quantize(actual, pred) {
            prop_assert!((reconstructed - actual).abs() <= eb);
            prop_assert_eq!(q.reconstruct(symbol, pred).to_bits(), reconstructed.to_bits());
        }
    }

    #[test]
    fn bitstream_roundtrip(fields in proptest::collection::vec((any::<u64>(), 1u32..=57), 0..200)) {
        let mut w = stz::codec::BitWriter::new();
        for &(v, n) in &fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            w.put(masked, n);
        }
        let bytes = w.finish();
        let mut r = stz::codec::BitReader::new(&bytes);
        for &(v, n) in &fields {
            let masked = if n == 64 { v } else { v & ((1u64 << n) - 1) };
            prop_assert_eq!(r.get(n).unwrap(), masked);
        }
    }
}
