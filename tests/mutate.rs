//! Integration tests for stz-mutate over real files:
//!
//! * concurrent `ContainerReader`s pin their generation: a reader opened
//!   before a delete + compaction keeps decoding the old generation
//!   byte-identically (its file descriptor holds the pre-rename inode),
//!   while fresh opens see the new one;
//! * in-place v2 -> v3 upgrade preserves every entry byte-identically and
//!   is idempotent;
//! * a container grown by incremental appends decodes identically to a
//!   never-mutated control packed in one shot — mutation leaves no trace
//!   in the decoded data.

use stz::data::synth;
use stz::mutate::{upgrade_path, FileBacking, MutableContainer};
use stz::prelude::*;
use stz::stream::{ContainerReader, ContainerWriter, FileSource, PackEntry};

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("stz_mutate_it_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn archive(seed: u64) -> StzArchive<f32> {
    let f = synth::miranda_like(Dims::d3(12, 12, 12), seed);
    StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap()
}

fn decode_all(reader: &ContainerReader<FileSource>) -> Vec<(String, Vec<f32>)> {
    (0..reader.entry_count())
        .map(|i| {
            let name = reader.entry_meta(i).unwrap().name().to_string();
            let field = reader.entry::<f32>(i).unwrap().decompress().unwrap();
            (name, field.as_slice().to_vec())
        })
        .collect()
}

#[test]
fn concurrent_readers_pin_their_generation_through_delete_and_compaction() {
    let d = dir("pin");
    let path = d.join("live.stzc");
    let mut c = MutableContainer::open_path(&path).unwrap();
    c.append("a", &PackEntry::from(archive(1))).unwrap();
    c.append("b", &PackEntry::from(archive(2))).unwrap();
    c.commit().unwrap();

    // A reader opened now pins generation 2 — including entry "b".
    let pinned = ContainerReader::open_path(&path).unwrap();
    assert_eq!(pinned.generation(), 2);
    let before = decode_all(&pinned);
    assert_eq!(before.len(), 2);

    // Delete "b" and compact while the old reader stays open.
    c.delete("b").unwrap();
    c.commit().unwrap();
    let stats = c.compact().unwrap();
    assert!(stats.reclaimed_bytes > 0, "the deleted entry's bytes must be reclaimed");

    // The pinned reader still serves its complete old generation: the
    // compaction rename replaced the directory entry, not the open inode.
    assert_eq!(decode_all(&pinned), before, "pinned generation must stay byte-identical");

    // A fresh open sees the compacted new generation without "b".
    let fresh = ContainerReader::open_path(&path).unwrap();
    assert_eq!(fresh.generation(), 4, "delete commit is gen 3, compaction gen 4");
    assert_eq!(fresh.dead_payload_bytes(), 0, "compaction leaves no dead bytes");
    let after = decode_all(&fresh);
    assert_eq!(after.len(), 1);
    assert_eq!(after[0], before[0], "surviving entry must decode identically");
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn v2_upgrade_in_place_preserves_entries_and_is_idempotent() {
    let d = dir("upgrade");
    let path = d.join("old.stzc");
    let file = std::fs::File::create(&path).unwrap();
    let mut w = ContainerWriter::new(std::io::BufWriter::new(file)).unwrap();
    let (a0, a1) = (archive(10), archive(11));
    w.add_archive("s0", &a0).unwrap();
    w.add_archive("s1", &a1).unwrap();
    w.finish().unwrap();
    let before = decode_all(&ContainerReader::open_path(&path).unwrap());

    assert!(upgrade_path(&path).unwrap(), "a v2 container upgrades");
    let reader = ContainerReader::open_path(&path).unwrap();
    assert_eq!(reader.version(), 3);
    assert_eq!(reader.generation(), 1);
    assert_eq!(decode_all(&reader), before, "upgrade must preserve every entry");

    assert!(!upgrade_path(&path).unwrap(), "upgrading a v3 container is a no-op");
    assert_eq!(decode_all(&ContainerReader::open_path(&path).unwrap()), before);
    let _ = std::fs::remove_dir_all(&d);
}

#[test]
fn incremental_appends_decode_identically_to_a_never_mutated_control() {
    let d = dir("control");
    let archives: Vec<StzArchive<f32>> = (0..4).map(|i| archive(20 + i)).collect();

    // Control: all entries packed in one shot, never mutated.
    let control_path = d.join("control.stzc");
    let file = std::fs::File::create(&control_path).unwrap();
    let mut w = ContainerWriter::new(std::io::BufWriter::new(file)).unwrap();
    for (i, a) in archives.iter().enumerate() {
        w.add_archive(&format!("e{i}"), a).unwrap();
    }
    w.finish().unwrap();

    // Candidate: grown one committed generation per entry, then compacted.
    let grown_path = d.join("grown.stzc");
    let mut c = MutableContainer::create(FileBacking::create(&grown_path).unwrap()).unwrap();
    for (i, a) in archives.iter().enumerate() {
        c.append(&format!("e{i}"), &PackEntry::from(a.clone())).unwrap();
        c.commit().unwrap();
    }
    c.compact().unwrap();
    drop(c);

    let control = decode_all(&ContainerReader::open_path(&control_path).unwrap());
    let grown = decode_all(&ContainerReader::open_path(&grown_path).unwrap());
    assert_eq!(control, grown, "mutation history must leave no trace in decoded data");
    let _ = std::fs::remove_dir_all(&d);
}
