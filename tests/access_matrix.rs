//! The access-layer contract test: every [`Fetch`] variant, served by all
//! three shipped stores over the *same* packed container, must produce
//! byte-identical [`FetchedField`]s — and classify failures identically.
//!
//! This is the pin that makes the unified API trustworthy: a consumer can
//! switch `MemStore` → `FileStore` → `RemoteStore` (or be handed any
//! `Box<dyn Store>` by `open_store`) without results drifting by transport.

use stz::access::{open_store, AccessError, EntrySel, Fetch, MemStore, Store};
use stz::prelude::*;
use stz::serve::{ServeOptions, Server};
use stz::stream::{ContainerWriter, ForeignArchive};

/// The test fixture: one f32 stz entry, one f64 stz entry, one foreign
/// (zfp) f32 entry — resident archives plus the container file packing
/// the exact same payloads.
struct Fixture {
    dir: std::path::PathBuf,
    container: std::path::PathBuf,
    mem: MemStore,
}

fn fixture(tag: &str) -> Fixture {
    let dims = Dims::d3(24, 24, 24);
    let f32_field: Field<f32> = stz::data::synth::miranda_like(dims, 41);
    let f64_field: Field<f64> = stz::data::synth::warpx_like(dims, 42);
    let zfp_field: Field<f32> = stz::data::synth::nyx_like(dims, 43);

    let a32 = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f32_field).unwrap();
    let a64 = StzCompressor::new(StzConfig::three_level(1e-4)).compress(&f64_field).unwrap();
    let zfp = registry().by_name("zfp").unwrap();
    let zfp_bytes =
        stz::backend::compress(zfp, &zfp_field, &stz::backend::ErrorBound::Absolute(1e-2)).unwrap();
    let foreign = ForeignArchive::new::<f32>(zfp.id(), dims, 1e-2, zfp_bytes);

    let dir = std::env::temp_dir().join(format!("stz_access_matrix_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let container = dir.join("steps.stzc");
    let file = std::fs::File::create(&container).unwrap();
    let mut writer = ContainerWriter::new(std::io::BufWriter::new(file)).unwrap();
    writer.add_archive("t32", &a32).unwrap();
    writer.add_archive("t64", &a64).unwrap();
    writer.add_foreign("zfp", &foreign).unwrap();
    writer.finish().unwrap();

    let mut mem = MemStore::new();
    mem.add("t32", a32);
    mem.add("t64", a64);
    mem.add("zfp", foreign);

    Fixture { dir, container, mem }
}

/// Every decoded/raw fetch shape the matrix exercises.
fn fetch_matrix() -> Vec<Fetch> {
    vec![
        Fetch::Full,
        Fetch::Level(1),
        Fetch::Level(2),
        Fetch::Level(3),
        Fetch::Progressive(1),
        Fetch::Progressive(3),
        Fetch::Region(Region::d3(3..9, 0..24, 10..14)),
        Fetch::Region(Region::d3(0..24, 0..24, 0..24)),
        Fetch::RawSection(0),
    ]
}

/// Run one fetch against one store's entry, normalizing to
/// `Ok((dims, type_tag, codec_id, data))` / `Err(class-name)` so results
/// can be compared across transports.
fn run_fetch(
    store: &dyn Store,
    sel: &EntrySel,
    fetch: &Fetch,
) -> Result<(Dims, u8, u8, Vec<u8>), &'static str> {
    let entry = store.open(sel).map_err(|_| "open")?;
    match entry.fetch(fetch) {
        Ok(f) => Ok((f.dims, f.type_tag, f.codec_id, f.data)),
        Err(AccessError::NotFound(_)) => Err("not_found"),
        Err(AccessError::Unsupported(_)) => Err("unsupported"),
        Err(AccessError::BadRequest(_)) => Err("bad_request"),
        Err(AccessError::Corrupt(_)) => Err("corrupt"),
        Err(_) => Err("other"),
    }
}

#[test]
fn fetch_matrix_is_byte_identical_across_all_three_stores() {
    let fx = fixture("matrix");

    let server = Server::bind(ServeOptions {
        root: fx.dir.clone(),
        addr: "127.0.0.1:0".into(),
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // The three transports, plus the URI front door as a fourth view of
    // the file transport.
    let file_store = open_store(&fx.container.display().to_string()).unwrap();
    let remote_store = open_store(&format!("stz://{addr}/steps")).unwrap();
    let stores: Vec<(&str, &dyn Store)> =
        vec![("mem", &fx.mem), ("file", &*file_store), ("remote", &*remote_store)];

    // Listings agree on everything a fetch plan needs.
    let mem_list = fx.mem.list().unwrap();
    assert_eq!(mem_list.len(), 3);
    for (name, store) in &stores {
        let list = store.list().unwrap();
        assert_eq!(list.len(), mem_list.len(), "{name} entry count");
        for (a, b) in mem_list.iter().zip(&list) {
            assert_eq!(a.name, b.name, "{name} entry name");
            assert_eq!(a.index, b.index, "{name} entry index");
            assert_eq!(a.codec_id, b.codec_id, "{name} codec");
            assert_eq!(a.type_tag, b.type_tag, "{name} type");
            assert_eq!(a.dims, b.dims, "{name} dims");
            assert_eq!(a.eb, b.eb, "{name} eb");
            assert_eq!(a.compressed_len, b.compressed_len, "{name} compressed_len");
            assert_eq!(a.payload_crc, b.payload_crc, "{name} payload crc");
            assert_eq!(a.levels, b.levels, "{name} levels");
            assert_eq!(a.level_bytes, b.level_bytes, "{name} level bytes");
        }
    }

    // The full matrix: every entry x every fetch x every store, compared
    // against the MemStore result (success bytes AND failure class).
    let mut decoded_fetches = 0;
    for entry_name in ["t32", "t64", "zfp"] {
        let sel = EntrySel::Name(entry_name.into());
        for fetch in fetch_matrix() {
            let expect = run_fetch(&fx.mem, &sel, &fetch);
            for (store_name, store) in &stores {
                let got = run_fetch(*store, &sel, &fetch);
                assert_eq!(
                    got, expect,
                    "[{store_name}] {entry_name}: {fetch:?} must match MemStore"
                );
            }
            if expect.is_ok() {
                decoded_fetches += 1;
            }
        }
    }
    // Sanity: the matrix actually exercised successes of every shape —
    // stz entries serve all 9 fetches, the foreign entry serves
    // full/region×2/raw.
    assert_eq!(decoded_fetches, 9 + 9 + 4, "unexpected matrix coverage");

    // Progressive and direct previews are byte-identical by construction.
    for (store_name, store) in &stores {
        let entry = store.open(&EntrySel::Name("t32".into())).unwrap();
        let level = entry.fetch(&Fetch::Level(2)).unwrap();
        let progressive = entry.fetch(&Fetch::Progressive(2)).unwrap();
        assert_eq!(level.data, progressive.data, "{store_name} progressive == level");
        assert_eq!(level.dims, progressive.dims, "{store_name} progressive dims");
    }

    // Error taxonomy is transport-independent for lookups too.
    for (store_name, store) in &stores {
        assert!(
            matches!(store.open(&EntrySel::Name("missing".into())), Err(AccessError::NotFound(_))),
            "{store_name} missing name"
        );
        assert!(
            matches!(store.open(&EntrySel::Index(99)), Err(AccessError::NotFound(_))),
            "{store_name} missing index"
        );
    }

    handle.stop();
    let _ = std::fs::remove_dir_all(&fx.dir);
}

#[test]
fn raw_fetch_matches_packed_payload_and_crc() {
    let fx = fixture("raw");
    let file_store = open_store(&fx.container.display().to_string()).unwrap();
    for name in ["t32", "t64", "zfp"] {
        let sel = EntrySel::Name(name.into());
        let mem_raw = fx.mem.open(&sel).unwrap().fetch(&Fetch::RawSection(0)).unwrap();
        let file_raw = file_store.open(&sel).unwrap().fetch(&Fetch::RawSection(0)).unwrap();
        assert_eq!(mem_raw.data, file_raw.data, "{name}: payload bytes");
        // The descriptor's CRC and length cover exactly these bytes.
        let desc = fx.mem.open(&sel).unwrap().desc().clone();
        assert_eq!(stz::stream::crc::crc32(&mem_raw.data), desc.payload_crc, "{name}: crc");
        assert_eq!(mem_raw.data.len() as u64, desc.compressed_len, "{name}: length");
    }
    let _ = std::fs::remove_dir_all(&fx.dir);
}
