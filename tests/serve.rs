//! Integration tests for the stz-serve archive server over real loopback
//! sockets:
//!
//! * 8 concurrent clients issuing mixed FULL/ROI/PROGRESSIVE fetches all
//!   receive bytes identical to local `ContainerReader` decodes, and a
//!   repeated-request workload reports a nonzero cache hit rate;
//! * wire-protocol robustness: truncated frames, bad magic, oversized
//!   length prefixes, mid-stream disconnects and CRC-corrupted responses
//!   error cleanly — no panics, no hangs (every socket carries a timeout);
//! * request-level failures (unknown container/entry, out-of-bounds ROI,
//!   progressive on a foreign-codec entry) answer `ERR` and leave the
//!   connection usable;
//! * the `METRICS`/`METRICS_OK` pair round-trips the server's telemetry
//!   registry (per-frame-kind request counters and latency histograms),
//!   and hostile `METRICS_OK` replies (wrong exposition version,
//!   truncated payload, trailing bytes) fail cleanly at the client;
//! * the trace-context extension round-trips byte-exact ids: a fetch
//!   carrying `TraceContextExt` yields a retained server trace under the
//!   *client's* trace id, rooted at the client's parent span, with the
//!   full `parse`/`cache`/`decode`/`write` span chain — and a
//!   `RemoteStore` fetch links transparently without any explicit ids;
//! * hostile `TRACE_OK` replies (wrong wire version, truncated span
//!   table, trailing bytes) fail cleanly at the client.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use stz::backend::ErrorBound;
use stz::data::synth;
use stz::prelude::*;
use stz::serve::{
    proto, Client, EntrySel, FetchReq, RequestKind, ServeError, ServeOptions, Server,
};
use stz::stream::{ContainerReader, ContainerWriter, ForeignArchive};

/// A hosted directory with one mixed container: two stz entries and one
/// zfp (foreign) entry, all 20x16x24 f32.
struct Rig {
    dir: std::path::PathBuf,
}

fn dims() -> Dims {
    Dims::d3(20, 16, 24)
}

impl Rig {
    fn new(tag: &str) -> Rig {
        let dir = std::env::temp_dir().join(format!("stz_serve_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fields: Vec<Field<f32>> =
            (0..3).map(|i| synth::miranda_like(dims(), 40 + i as u64)).collect();
        let file = std::fs::File::create(dir.join("steps.stzc")).unwrap();
        let mut w = ContainerWriter::new(std::io::BufWriter::new(file)).unwrap();
        let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
        w.add_archive("t0", &compressor.compress(&fields[0]).unwrap()).unwrap();
        w.add_archive("t1", &compressor.compress(&fields[1]).unwrap()).unwrap();
        let zfp = registry().by_name("zfp").unwrap();
        let bytes = stz::backend::compress(zfp, &fields[2], &ErrorBound::Absolute(1e-3)).unwrap();
        w.add_foreign("zfp0", &ForeignArchive::new::<f32>(zfp.id(), dims(), 1e-3, bytes)).unwrap();
        w.finish().unwrap();
        Rig { dir }
    }

    fn serve(&self) -> (stz::serve::ServerHandle, std::net::SocketAddr) {
        let server = Server::bind(ServeOptions {
            root: self.dir.clone(),
            addr: "127.0.0.1:0".into(),
            cache_bytes: 32 << 20,
            read_timeout: Some(Duration::from_secs(5)),
            ..ServeOptions::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        (server.spawn().unwrap(), addr)
    }

    fn reader(&self) -> ContainerReader<stz::stream::FileSource> {
        ContainerReader::open_path(self.dir.join("steps.stzc")).unwrap()
    }
}

impl Drop for Rig {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Raw little-endian bytes of a field — what `FETCH_OK` carries.
fn le_bytes(f: &Field<f32>) -> Vec<u8> {
    let mut out = Vec::with_capacity(f.nbytes());
    for &v in f.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

// ---------------------------------------------------------------------------
// The acceptance workload.
// ---------------------------------------------------------------------------

#[test]
fn eight_concurrent_clients_mixed_fetches_are_byte_identical_and_cache_hits() {
    let rig = Rig::new("concurrent");
    let (handle, addr) = rig.serve();
    let reader = rig.reader();
    let roi = Region::d3(4..12, 2..14, 6..18);

    // Local ground truth for every request in the mix (stz full/roi/
    // progressive on both entries, full + roi on the foreign entry).
    let mut mix: Vec<(FetchReq, Vec<u8>)> = Vec::new();
    for i in 0..2usize {
        let entry = reader.entry::<f32>(i).unwrap();
        mix.push((
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(i as u32),
                kind: RequestKind::Full,
                trace: None,
            },
            le_bytes(&entry.decompress().unwrap()),
        ));
        mix.push((
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(i as u32),
                kind: RequestKind::roi(&roi),
                trace: None,
            },
            le_bytes(&entry.decompress_region(&roi).unwrap()),
        ));
        mix.push((
            FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(i as u32),
                kind: RequestKind::Level(1),
                trace: None,
            },
            le_bytes(&entry.decompress_level(1).unwrap()),
        ));
    }
    let foreign = reader.entry::<f32>(2).unwrap();
    mix.push((
        FetchReq {
            container: "steps".into(),
            entry: EntrySel::Name("zfp0".into()),
            kind: RequestKind::Full,
            trace: None,
        },
        le_bytes(&foreign.decompress().unwrap()),
    ));
    mix.push((
        FetchReq {
            container: "steps".into(),
            entry: EntrySel::Index(2),
            kind: RequestKind::roi(&roi),
            trace: None,
        },
        le_bytes(&foreign.decompress_region(&roi).unwrap()),
    ));
    let mix = Arc::new(mix);

    std::thread::scope(|scope| {
        for c in 0..8usize {
            let mix = Arc::clone(&mix);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // 3 passes over the whole mix, staggered per client: every
                // block is requested repeatedly across connections.
                for r in 0..3 * mix.len() {
                    let (req, expect) = &mix[(r + c) % mix.len()];
                    let fetched = client.fetch(req).unwrap();
                    assert_eq!(
                        &fetched.data, expect,
                        "client {c} round {r}: remote bytes differ from local decode"
                    );
                    let field: Field<f32> = fetched.into_field().unwrap();
                    assert!(!field.is_empty());
                }
            });
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.cache_hits > 0, "repeated workload must hit the cache: {stats:?}");
    assert!(stats.hit_rate() > 0.5, "24 passes over 8 blocks should mostly hit: {stats:?}");
    assert_eq!(stats.containers, 1);
    assert!(stats.requests >= (8 * 3 * mix.len()) as u64);
    handle.stop();
}

#[test]
fn list_inspect_and_raw_match_local_metadata() {
    let rig = Rig::new("meta");
    let (handle, addr) = rig.serve();
    let mut client = Client::connect(addr).unwrap();

    let list = client.list().unwrap();
    assert_eq!(list.len(), 1);
    assert_eq!(list[0].name, "steps");
    assert_eq!(list[0].entries, 3);
    assert_eq!(list[0].file_len, std::fs::metadata(rig.dir.join("steps.stzc")).unwrap().len());

    let entries = client.inspect("steps").unwrap();
    let reader = rig.reader();
    let local: Vec<proto::EntryInfo> =
        reader.entries().map(|m| proto::EntryInfo::from_meta(&m)).collect();
    assert_eq!(entries, local, "remote entry table must equal the local one");
    assert_eq!(entries[2].codec_name(), Some("zfp"));
    assert_eq!(entries[2].levels, 0);

    // Raw section fetch: exactly the compressed payload the index records.
    let raw = client.fetch_raw("steps", EntrySel::Name("t0".into())).unwrap();
    let local_payload = reader.entry::<f32>(0).unwrap().read_payload().unwrap();
    assert_eq!(raw, local_payload);
    handle.stop();
}

#[test]
fn metrics_round_trip_reports_request_counters() {
    let rig = Rig::new("metrics");
    let (handle, addr) = rig.serve();
    let mut client = Client::connect(addr).unwrap();

    // Traffic of several frame kinds, then one METRICS round-trip.
    let roi = Region::d3(4..12, 2..14, 6..18);
    client.list().unwrap();
    client.inspect("steps").unwrap();
    client.fetch_full("steps", EntrySel::Index(0)).unwrap();
    client
        .fetch(&FetchReq {
            container: "steps".into(),
            entry: EntrySel::Index(0),
            kind: RequestKind::roi(&roi),
            trace: None,
        })
        .unwrap();
    client.fetch_level("steps", EntrySel::Index(0), 1).unwrap();
    let text = client.metrics().unwrap();

    assert!(
        text.starts_with("# stz-telemetry exposition v1"),
        "exposition must carry its version header: {text:?}"
    );
    let samples = stz::telemetry::expo::parse(&text).expect("server exposition parses");
    // The registry is process-global and shared with sibling tests, so
    // counts are lower-bounded by this test's own traffic, not equal.
    // The METRICS request itself is counted before the registry renders,
    // so "metrics" appears in its own exposition.
    for kind in ["list", "inspect", "full", "roi", "progressive", "metrics"] {
        let labels = [("kind", kind)];
        let requests = stz::telemetry::expo::sample_value(&samples, "stzp_requests_total", &labels)
            .unwrap_or(0.0);
        assert!(requests >= 1.0, "kind {kind} must be counted, got {requests}:\n{text}");
        // Latency is recorded at the reply-write site, after the request
        // counter, so it can only lag the counter (never exceed it).
        let timed =
            stz::telemetry::expo::sample_value(&samples, "stzp_request_latency_ns_count", &labels)
                .unwrap_or(0.0);
        assert!(timed <= requests, "kind {kind}: {timed} timed > {requests} counted:\n{text}");
        if kind != "metrics" {
            // Every pre-METRICS request of this test was fully replied to.
            assert!(timed >= 1.0, "kind {kind} must have latency samples:\n{text}");
            let p99 = stz::telemetry::expo::histogram_quantile(
                &samples,
                "stzp_request_latency_ns",
                &labels,
                0.99,
            );
            assert!(p99.is_some(), "kind {kind} must expose latency buckets:\n{text}");
        }
    }
    // Connection lifecycle and cache counters ride the same registry.
    let conns = stz::telemetry::expo::sample_value(&samples, "stzp_connections_total", &[]);
    assert!(conns.unwrap_or(0.0) >= 1.0, "connections_total missing:\n{text}");
    let active = stz::telemetry::expo::sample_value(&samples, "stzp_connections_active", &[]);
    assert!(active.unwrap_or(0.0) >= 1.0, "this very connection is active:\n{text}");
    assert!(
        stz::telemetry::expo::sample_value(&samples, "stz_serve_cache_misses_total", &[]).is_some(),
        "cache counters must be registered:\n{text}"
    );
    handle.stop();
}

// ---------------------------------------------------------------------------
// Request-level errors keep the connection alive.
// ---------------------------------------------------------------------------

#[test]
fn request_errors_answer_err_and_connection_survives() {
    let rig = Rig::new("errors");
    let (handle, addr) = rig.serve();
    let mut client = Client::connect(addr).unwrap();

    let remote_code = |e: ServeError| match e {
        ServeError::Remote { code, .. } => code,
        other => panic!("expected Remote error, got {other:?}"),
    };

    // Unknown container / entry.
    let e = client.fetch_full("nope", EntrySel::Index(0)).unwrap_err();
    assert_eq!(remote_code(e), proto::err_code::NOT_FOUND);
    let e = client.fetch_full("steps", EntrySel::Index(99)).unwrap_err();
    assert_eq!(remote_code(e), proto::err_code::NOT_FOUND);
    let e = client.fetch_full("steps", EntrySel::Name("ghost".into())).unwrap_err();
    assert_eq!(remote_code(e), proto::err_code::NOT_FOUND);

    // ROI outside the entry (and inverted bounds).
    let e = client
        .fetch(&FetchReq {
            container: "steps".into(),
            entry: EntrySel::Index(0),
            kind: RequestKind::Roi([0, 64, 0, 64, 0, 64]),
            trace: None,
        })
        .unwrap_err();
    assert_eq!(remote_code(e), proto::err_code::BAD_REQUEST);
    let e = client
        .fetch(&FetchReq {
            container: "steps".into(),
            entry: EntrySel::Index(0),
            kind: RequestKind::Roi([4, 2, 0, 1, 0, 1]),
            trace: None,
        })
        .unwrap_err();
    assert_eq!(remote_code(e), proto::err_code::BAD_REQUEST);

    // Progressive preview of a foreign entry is unsupported, not fatal.
    let e = client.fetch_level("steps", EntrySel::Name("zfp0".into()), 1).unwrap_err();
    assert_eq!(remote_code(e), proto::err_code::UNSUPPORTED);

    // After all of that, the same connection still serves real requests.
    let ok = client.fetch_full("steps", EntrySel::Index(0)).unwrap();
    assert_eq!(ok.dims, dims());
    handle.stop();
}

// ---------------------------------------------------------------------------
// Hostile bytes at the server.
// ---------------------------------------------------------------------------

/// A raw socket speaking whatever bytes the test wants.
fn raw_conn(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

/// Read everything the server sends until it closes (bounded by the
/// socket timeout, so a misbehaving server fails the test, not hangs it).
fn drain(s: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

#[test]
fn server_survives_garbage_truncation_and_disconnects() {
    let rig = Rig::new("hostile");
    let (handle, addr) = rig.serve();

    // Bad magic: the server must answer (an ERR frame) or close — and
    // must not panic. Afterwards a well-behaved client still works.
    {
        let mut s = raw_conn(addr);
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let reply = drain(&mut s);
        if !reply.is_empty() {
            let frame = proto::read_frame(&mut &reply[..]).unwrap().unwrap();
            assert_eq!(frame.frame_type(), Some(proto::FrameType::Err));
        }
    }

    // Oversized length prefix: rejected without a 4 GiB allocation.
    {
        let mut s = raw_conn(addr);
        let mut header = [0u8; proto::FRAME_HEADER_LEN];
        header[0..4].copy_from_slice(&proto::PROTO_MAGIC);
        header[4] = proto::PROTO_VERSION;
        header[5] = 0x01; // HELLO
        header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        s.write_all(&header).unwrap();
        let reply = drain(&mut s);
        if !reply.is_empty() {
            let frame = proto::read_frame(&mut &reply[..]).unwrap().unwrap();
            assert_eq!(frame.frame_type(), Some(proto::FrameType::Err));
        }
    }

    // Truncated frame + mid-stream disconnect: header promises 100
    // payload bytes, the peer sends 10 and vanishes.
    {
        let mut s = raw_conn(addr);
        let mut header = [0u8; proto::FRAME_HEADER_LEN];
        header[0..4].copy_from_slice(&proto::PROTO_MAGIC);
        header[4] = proto::PROTO_VERSION;
        header[5] = 0x01;
        header[8..12].copy_from_slice(&100u32.to_le_bytes());
        s.write_all(&header).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
        drop(s); // disconnect mid-frame
    }

    // Disconnect between the handshake and a request.
    {
        let mut s = raw_conn(addr);
        let mut hello = Vec::new();
        proto::write_frame(&mut hello, proto::FrameType::Hello, &[proto::PROTO_VERSION]).unwrap();
        s.write_all(&hello).unwrap();
        drop(s);
    }

    // CRC-corrupted request frame.
    {
        let mut s = raw_conn(addr);
        let mut hello = Vec::new();
        proto::write_frame(&mut hello, proto::FrameType::Hello, &[proto::PROTO_VERSION]).unwrap();
        let last = hello.len() - 1;
        hello[last] ^= 0xFF;
        s.write_all(&hello).unwrap();
        let reply = drain(&mut s);
        if !reply.is_empty() {
            let frame = proto::read_frame(&mut &reply[..]).unwrap().unwrap();
            assert_eq!(frame.frame_type(), Some(proto::FrameType::Err));
        }
    }

    // The server is still healthy after all of the above.
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.list().unwrap().len(), 1);
    let fetched = client.fetch_full("steps", EntrySel::Index(0)).unwrap();
    assert_eq!(fetched.dims, dims());
    handle.stop();
}

// ---------------------------------------------------------------------------
// Hostile bytes at the client: a lying server.
// ---------------------------------------------------------------------------

/// A one-connection fake server: completes the handshake honestly, then
/// answers the next request with `response` verbatim (or closes early).
fn fake_server(response: Option<Vec<u8>>) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // Handshake.
        let frame = proto::read_frame(&mut s).unwrap().unwrap();
        assert_eq!(frame.frame_type(), Some(proto::FrameType::Hello));
        let mut hello_ok = proto::Enc::new();
        hello_ok.u8(proto::PROTO_VERSION);
        hello_ok.string("fake-server/0");
        proto::write_frame(&mut s, proto::FrameType::HelloOk, &hello_ok.finish()).unwrap();
        // One request, one scripted reply.
        let _ = proto::read_frame(&mut s);
        if let Some(bytes) = response {
            let _ = s.write_all(&bytes);
        }
        // Closing the socket is the "mid-stream disconnect" case.
    });
    addr
}

#[test]
fn client_rejects_corrupted_and_truncated_responses() {
    // A well-formed FETCH_OK frame to corrupt in different ways.
    let honest = {
        let field = Field::from_fn(Dims::d3(2, 2, 2), |z, y, x| (z + y + x) as f32);
        let ff = stz::serve::FetchedField {
            kind_tag: RequestKind::Full.tag(),
            type_tag: 0,
            dims: field.dims(),
            data: le_bytes(&field),
        };
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, proto::FrameType::FetchOk, &ff.encode()).unwrap();
        wire
    };

    let fetch =
        |addr| Client::connect(addr).and_then(|mut c| c.fetch_full("steps", EntrySel::Index(0)));

    // CRC-corrupted payload byte.
    let mut corrupt = honest.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    match fetch(fake_server(Some(corrupt))) {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("CRC"), "{msg}"),
        other => panic!("corrupted response must fail with a CRC error, got {other:?}"),
    }

    // Bad magic from the server.
    let mut bad_magic = honest.clone();
    bad_magic[0] = b'X';
    assert!(matches!(fetch(fake_server(Some(bad_magic))), Err(ServeError::Protocol(_))));

    // Oversized length prefix from the server.
    let mut oversized = honest.clone();
    oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(fetch(fake_server(Some(oversized))), Err(ServeError::Protocol(_))));

    // Truncated frame then disconnect.
    let truncated = honest[..honest.len() / 2].to_vec();
    assert!(matches!(fetch(fake_server(Some(truncated))), Err(ServeError::Protocol(_))));

    // No response at all (disconnect after the request).
    assert!(matches!(fetch(fake_server(None)), Err(ServeError::Protocol(_))));

    // Well-formed but *lying* dims: data length disagrees.
    let lying = {
        let mut payload = {
            let field = Field::from_fn(Dims::d3(2, 2, 2), |_, _, _| 0.0f32);
            stz::serve::FetchedField {
                kind_tag: RequestKind::Full.tag(),
                type_tag: 0,
                dims: field.dims(),
                data: le_bytes(&field),
            }
            .encode()
        };
        payload.truncate(payload.len() - 4); // drop one scalar
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, proto::FrameType::FetchOk, &payload).unwrap();
        wire
    };
    assert!(matches!(fetch(fake_server(Some(lying))), Err(ServeError::Protocol(_))));
}

#[test]
fn client_rejects_hostile_metrics_replies() {
    let metrics = |addr| Client::connect(addr).and_then(|mut c| c.metrics());

    // An unknown exposition version is rejected before any parsing.
    let mut enc = proto::Enc::new();
    enc.u8(99);
    enc.string("stzp_requests_total 1\n");
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, proto::FrameType::MetricsOk, &enc.finish()).unwrap();
    match metrics(fake_server(Some(wire))) {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("wrong exposition version must fail, got {other:?}"),
    }

    // Truncated payload: version byte only, the text is missing.
    let mut wire = Vec::new();
    proto::write_frame(
        &mut wire,
        proto::FrameType::MetricsOk,
        &[stz::telemetry::EXPOSITION_VERSION],
    )
    .unwrap();
    assert!(matches!(metrics(fake_server(Some(wire))), Err(ServeError::Protocol(_))));

    // Trailing junk after a well-formed payload.
    let mut enc = proto::Enc::new();
    enc.u8(stz::telemetry::EXPOSITION_VERSION);
    enc.string("a_total 1\n");
    let mut payload = enc.finish();
    payload.push(0xAA);
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, proto::FrameType::MetricsOk, &payload).unwrap();
    assert!(matches!(metrics(fake_server(Some(wire))), Err(ServeError::Protocol(_))));

    // A structurally valid reply whose *text* is hostile still decodes at
    // the transport layer — rejecting garbage lines is the parser's job.
    let mut enc = proto::Enc::new();
    enc.u8(stz::telemetry::EXPOSITION_VERSION);
    enc.string("not an exposition line");
    let mut wire = Vec::new();
    proto::write_frame(&mut wire, proto::FrameType::MetricsOk, &enc.finish()).unwrap();
    let text = metrics(fake_server(Some(wire))).expect("transport does not parse the text");
    assert!(stz::telemetry::expo::parse(&text).is_err(), "the parser must reject it");
}

// ---------------------------------------------------------------------------
// Distributed tracing: trace-context propagation and TRACE_GET export.
// ---------------------------------------------------------------------------

/// Every non-root span must parent onto another span of the same trace.
fn assert_causally_linked(t: &stz::telemetry::trace::TraceRecord) {
    let ids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.id).collect();
    let root = t.root().expect("trace has a root span");
    for s in &t.spans {
        if s.id != root.id {
            assert!(
                ids.contains(&s.parent),
                "span {:?} dangles: parent {} unknown",
                s.name,
                s.parent
            );
        }
    }
}

#[test]
fn trace_context_round_trips_byte_exact_ids() {
    let rig = Rig::new("trace_ids");
    let (handle, addr) = rig.serve();
    let mut client = Client::connect(addr).unwrap();

    // A fetch carrying explicit, recognizable trace ids. The collector is
    // process-global and sibling tests flood the same per-kind retention
    // rings, so retry until the fetch→TRACE_GET window wins the race.
    let trace_id = 0xDEAD_BEEF_1234_5678u64;
    let parent_span = 0x42u64;
    let mut found = None;
    for _ in 0..20 {
        let fetched = client
            .fetch(&FetchReq {
                container: "steps".into(),
                entry: EntrySel::Index(0),
                kind: RequestKind::Full,
                trace: Some(proto::TraceContextExt { trace_id, parent_span }),
            })
            .unwrap();
        assert_eq!(fetched.dims, dims());
        // TRACE_GET returns the tail-sampled snapshot; the server must
        // have adopted the client's trace id verbatim and rooted its span
        // tree under the client's parent span.
        let traces = client.trace().unwrap();
        if let Some(t) = traces.iter().find(|t| t.trace_id == trace_id) {
            found = Some(t.clone());
            break;
        }
    }
    let t = &found.expect("server retained the trace under the client's id");
    assert_eq!(t.kind, "full");
    assert!(!t.error);
    let root = t.root().expect("root span");
    assert_eq!(root.name, "request");
    assert_eq!(root.parent, parent_span, "root must parent under the client's span id");
    assert_causally_linked(t);

    // The instrumented request path shows up as named stages.
    let names: std::collections::HashSet<&str> = t.spans.iter().map(|s| s.name.as_str()).collect();
    for stage in ["request", "connection", "parse", "cache", "decode", "write"] {
        assert!(names.contains(stage), "span {stage:?} missing from {names:?}");
    }
    assert!(t.spans.len() >= 5, "expected a real span tree, got {}", t.spans.len());
    // Stage spans nest inside the trace window.
    assert_eq!(root.duration_ns, t.duration_ns, "root span spans the whole trace");
    for s in &t.spans {
        assert!(
            s.start_ns + s.duration_ns <= t.duration_ns,
            "span {:?} escapes the trace window",
            s.name
        );
    }
    handle.stop();
}

#[test]
fn remote_store_fetch_links_client_and_server_traces() {
    let rig = Rig::new("trace_remote");
    let (handle, addr) = rig.serve();

    // A RemoteStore fetch opens a client-side trace root and injects its
    // ids into the wire frame — no explicit trace plumbing in user code.
    use stz::access::Store as _;
    let store = stz::access::RemoteStore::connect(addr, "steps").unwrap();
    let entry = store.open(&stz::access::EntrySel::Index(0)).unwrap();
    let mut client = Client::connect(addr).unwrap();

    // Both sides share this process's collector: the snapshot carries the
    // client-kind trace and the server-kind trace under one id. Sibling
    // tests contend on the "full" retention rings, so retry the
    // fetch→TRACE_GET window until the pair survives sampling.
    let mut pair = None;
    for _ in 0..20 {
        let fetched = entry.fetch(&stz::access::Fetch::Full).unwrap();
        assert_eq!(fetched.dims, dims());
        let traces = client.trace().unwrap();
        pair = traces.iter().find_map(|server| {
            if server.kind != "full" {
                return None;
            }
            traces
                .iter()
                .find(|c| c.kind == "client" && c.trace_id == server.trace_id)
                .map(|c| (c.clone(), server.clone()))
        });
        if pair.is_some() {
            break;
        }
    }
    let (client_t, server_t) = pair.expect("linked client/server trace pair retained");
    let (client_t, server_t) = (&client_t, &server_t);
    assert_causally_linked(server_t);
    // The server root parents under the client's "roundtrip" span.
    let roundtrip = client_t
        .spans
        .iter()
        .find(|s| s.name == "roundtrip")
        .expect("client trace records the roundtrip span");
    assert_eq!(server_t.root().unwrap().parent, roundtrip.id);
    let names: std::collections::HashSet<&str> =
        server_t.spans.iter().map(|s| s.name.as_str()).collect();
    for stage in ["parse", "cache", "decode", "write"] {
        assert!(names.contains(stage), "span {stage:?} missing from {names:?}");
    }
    handle.stop();
}

#[test]
fn client_rejects_hostile_trace_replies() {
    use stz::telemetry::trace::{SpanRecord, TraceRecord};
    let trace = |addr| Client::connect(addr).and_then(|mut c| c.trace());

    // A well-formed TRACE_OK payload to corrupt in different ways.
    let honest = proto::encode_trace_ok(&[TraceRecord {
        trace_id: 7,
        kind: "full".into(),
        error: false,
        duration_ns: 1_000,
        dropped_spans: 0,
        spans: vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "request".into(),
                start_ns: 0,
                duration_ns: 1_000,
                attrs: vec![("kind".into(), "full".into())],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "decode".into(),
                start_ns: 100,
                duration_ns: 500,
                attrs: Vec::new(),
            },
        ],
    }]);
    let framed = |payload: &[u8]| {
        let mut wire = Vec::new();
        proto::write_frame(&mut wire, proto::FrameType::TraceOk, payload).unwrap();
        wire
    };

    // The honest payload decodes — the baseline for the corruptions.
    let got = trace(fake_server(Some(framed(&honest)))).expect("honest TRACE_OK decodes");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].trace_id, 7);
    assert_eq!(got[0].spans.len(), 2);

    // Unknown wire version.
    let mut bad_version = honest.clone();
    bad_version[0] = 99;
    match trace(fake_server(Some(framed(&bad_version)))) {
        Err(ServeError::Protocol(msg)) => assert!(msg.contains("version"), "{msg}"),
        other => panic!("wrong trace wire version must fail, got {other:?}"),
    }

    // Truncated span table.
    let truncated = &honest[..honest.len() - 6];
    assert!(matches!(trace(fake_server(Some(framed(truncated)))), Err(ServeError::Protocol(_))));

    // Trailing junk after a well-formed payload.
    let mut trailing = honest.clone();
    trailing.push(0xAA);
    assert!(matches!(trace(fake_server(Some(framed(&trailing)))), Err(ServeError::Protocol(_))));

    // A count prefix promising traces the payload does not carry.
    let mut lying = honest.clone();
    lying[1..5].copy_from_slice(&1_000u32.to_le_bytes());
    assert!(matches!(trace(fake_server(Some(framed(&lying)))), Err(ServeError::Protocol(_))));
}

#[test]
fn version_mismatch_is_rejected_at_handshake() {
    let rig = Rig::new("version");
    let (handle, addr) = rig.serve();
    // Speak HELLO with a client version the server does not know.
    let mut s = raw_conn(addr);
    let mut hello = Vec::new();
    proto::write_frame(&mut hello, proto::FrameType::Hello, &[42]).unwrap();
    s.write_all(&hello).unwrap();
    let frame = proto::read_frame(&mut s).unwrap().unwrap();
    assert_eq!(frame.frame_type(), Some(proto::FrameType::Err));
    match proto::decode_err(&frame.payload) {
        ServeError::Remote { code, .. } => assert_eq!(code, proto::err_code::UNSUPPORTED),
        other => panic!("expected Remote, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn connection_cap_answers_busy_and_recovers() {
    let rig = Rig::new("busy");
    let server = Server::bind(ServeOptions {
        root: rig.dir.clone(),
        addr: "127.0.0.1:0".into(),
        max_conns: 1,
        read_timeout: Some(Duration::from_secs(5)),
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    // First connection occupies the single slot.
    let mut first = Client::connect(addr).unwrap();
    assert_eq!(first.list().unwrap().len(), 1);

    // While it is held open, further connections are told BUSY (the
    // accept loop may need a moment to hand the overflow socket to its
    // short-lived responder, so allow a few attempts).
    let mut saw_busy = false;
    for _ in 0..20 {
        match Client::connect(addr) {
            Err(ServeError::Remote { code, .. }) if code == proto::err_code::BUSY => {
                saw_busy = true;
                break;
            }
            // Shed (closed without a frame) also counts as enforcement,
            // but keep probing for the explicit BUSY answer.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(saw_busy, "overflow connection never saw ERR BUSY");

    // Releasing the slot lets new connections in again.
    drop(first);
    for attempt in 0..50 {
        match Client::connect(addr) {
            Ok(mut c) => {
                assert_eq!(c.list().unwrap().len(), 1);
                break;
            }
            Err(_) if attempt < 49 => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("server never recovered after the slot freed: {e}"),
        }
    }
    handle.stop();
}

// ---------------------------------------------------------------------------
// Read-consistent snapshots over mutable (v3) containers.
// ---------------------------------------------------------------------------

/// A running server reopens a container when a mutation commits a new
/// generation: appended entries become fetchable, deleted entries answer
/// NOT_FOUND, survivors stay byte-identical through a compaction rename —
/// all over one long-lived client connection, with no server restart.
#[test]
fn server_follows_generation_flips_of_a_mutable_container() {
    use stz::access::{open_store_mut, EntryPayload};

    let rig = Rig::new("mutate");
    let path = rig.dir.join("steps.stzc");
    let compressor = StzCompressor::new(StzConfig::three_level(1e-3));
    let (handle, addr) = rig.serve();
    let mut client = Client::connect(addr).unwrap();

    // Generation 1 (the packed v2 container) serves normally and primes
    // the decoded-block cache for entry t0.
    let t0 = client.fetch_full("steps", EntrySel::Name("t0".into())).unwrap();
    assert_eq!(t0.data, le_bytes(&rig.reader().entry::<f32>(0).unwrap().decompress().unwrap()));

    // Mutate the live file through the write API: upgrade to v3, append a
    // new entry, drop t0, commit one new generation.
    let f3 = synth::miranda_like(dims(), 99);
    let a3 = compressor.compress(&f3).unwrap();
    {
        let mut store = open_store_mut(path.to_str().unwrap()).unwrap();
        store.append("t3", EntryPayload::F32(a3.clone())).unwrap();
        store.delete("t0").unwrap();
        let generation = store.commit().unwrap();
        assert_eq!(generation, 2, "upgrade pins gen 1, the batch commits gen 2");
    }

    // The same connection sees the new generation on its next requests.
    let t3 = client.fetch_full("steps", EntrySel::Name("t3".into())).unwrap();
    assert_eq!(t3.data, le_bytes(&a3.decompress().unwrap()), "appended entry fetches");
    match client.fetch_full("steps", EntrySel::Name("t0".into())) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, proto::err_code::NOT_FOUND),
        other => panic!("deleted entry must answer NOT_FOUND, got {other:?}"),
    }
    let t1 = client.fetch_full("steps", EntrySel::Name("t1".into())).unwrap();

    // Compaction rewrites the file and renames it into place; the server
    // follows the flip and survivors stay byte-identical.
    {
        let mut store = open_store_mut(path.to_str().unwrap()).unwrap();
        let report = store.compact().unwrap();
        assert!(report.reclaimed_bytes > 0, "dead t0 bytes must be reclaimed");
    }
    let t1_after = client.fetch_full("steps", EntrySel::Name("t1".into())).unwrap();
    assert_eq!(t1.data, t1_after.data, "compaction must not change surviving bytes");
    let entries = client.inspect("steps").unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["t1", "zfp0", "t3"], "post-compaction entry table");

    handle.stop();
}
