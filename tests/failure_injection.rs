//! Failure injection: corrupted, truncated, or foreign archives must be
//! rejected with an error — never a panic, hang, or huge allocation.

use stz::data::synth;
use stz::prelude::*;

fn sample_archives() -> Vec<(&'static str, Vec<u8>)> {
    let f = synth::miranda_like(Dims::d3(14, 13, 12), 21);
    vec![
        (
            "stz",
            StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap().into_bytes(),
        ),
        ("sz3", stz::sz3::compress(&f, &stz::sz3::Sz3Config::absolute(1e-3))),
        ("sperr", stz::sperr::compress(&f, &stz::sperr::SperrConfig::new(1e-3))),
        ("zfp", stz::zfp::compress(&f, &stz::zfp::ZfpConfig::new(1e-3))),
        ("mgard", stz::mgard::compress(&f, &stz::mgard::MgardConfig::new(1e-3))),
    ]
}

fn try_decode(name: &str, bytes: &[u8]) {
    // Must return (Ok or Err) without panicking.
    match name {
        "stz" => {
            if let Ok(a) = StzArchive::<f32>::from_bytes(bytes.to_vec()) {
                let _ = a.decompress();
                let _ = a.decompress_level(1);
                let _ = a.decompress_region(&Region::d3(0..2, 0..2, 0..2));
            }
        }
        "sz3" => {
            let _ = stz::sz3::decompress::<f32>(bytes);
        }
        "sperr" => {
            let _ = stz::sperr::decompress::<f32>(bytes);
        }
        "zfp" => {
            let _ = stz::zfp::decompress::<f32>(bytes);
        }
        "mgard" => {
            let _ = stz::mgard::decompress::<f32>(bytes);
        }
        _ => unreachable!(),
    }
}

#[test]
fn truncation_sweep_never_panics() {
    for (name, bytes) in sample_archives() {
        let step = (bytes.len() / 97).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            try_decode(name, &bytes[..cut]);
        }
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    for (name, bytes) in sample_archives() {
        let step = (bytes.len() / 211).max(1);
        for pos in (0..bytes.len()).step_by(step) {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xA5;
            try_decode(name, &corrupted);
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic pseudo-random buffers of various lengths.
    for len in [0usize, 1, 3, 16, 64, 333, 4096] {
        let garbage: Vec<u8> = (0..len)
            .map(|i| (stz::data::synth::noise::hash64(i as u64 ^ 0xDEAD) & 0xFF) as u8)
            .collect();
        for name in ["stz", "sz3", "sperr", "zfp", "mgard"] {
            try_decode(name, &garbage);
        }
    }
}

#[test]
fn header_bomb_dims_rejected_without_allocation() {
    // A forged header claiming absurd dims must be rejected before any
    // proportional allocation happens (the MAX_POINTS cap).
    let f = synth::miranda_like(Dims::d3(8, 8, 8), 2);
    let bytes = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap().into_bytes();
    // dims live right after magic+version+type+ndim = byte 7 onwards as
    // uvarints; overwrite with huge varints.
    let mut forged = bytes.clone();
    forged[7] = 0xFF;
    forged[8] = 0xFF;
    forged[9] = 0xFF;
    let r = StzArchive::<f32>::from_bytes(forged);
    assert!(r.is_err());
}

#[test]
fn from_bytes_truncation_exhaustive() {
    // Parsing catalogues every section without touching entropy-coded
    // payloads, so sweeping *every* prefix is cheap — and none may panic.
    // Anything shorter than the full stream must be rejected (the parser
    // demands zero trailing bytes and complete framing).
    let f = synth::miranda_like(Dims::d3(10, 11, 12), 31);
    let bytes = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap().into_bytes();
    for cut in 0..bytes.len() {
        assert!(
            StzArchive::<f32>::from_bytes(bytes[..cut].to_vec()).is_err(),
            "prefix of {cut} bytes parsed as a complete archive"
        );
    }
    assert!(StzArchive::<f32>::from_bytes(bytes).is_ok());
}

#[test]
fn forged_section_lengths_rejected() {
    // A forged length prefix on the level-1 stream shifts all downstream
    // framing; the parser must catch it (range validation), never panic or
    // over-allocate.
    let f = synth::miranda_like(Dims::d3(12, 12, 12), 17);
    let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
    let bytes = a.as_bytes();
    let l1 = a.l1_range();

    // The varint length prefix ends one byte before the stream: setting its
    // continuation bit splices the payload into the length itself.
    let mut forged = bytes.to_vec();
    forged[l1.start - 1] |= 0x80;
    assert!(StzArchive::<f32>::from_bytes(forged).is_err());

    // An absurdly long varint (all continuation bits) must be rejected too.
    let mut forged = bytes.to_vec();
    for k in 1..=2usize.min(l1.start) {
        forged[l1.start - k] = 0xFF;
    }
    assert!(StzArchive::<f32>::from_bytes(forged).is_err());

    // Same attack on a finer-level sub-block stream.
    let b = a.block_range(2, 0);
    let mut forged = bytes.to_vec();
    forged[b.start - 1] |= 0x80;
    assert!(StzArchive::<f32>::from_bytes(forged).is_err());
}

#[test]
fn header_field_corruption_sweep_never_panics() {
    // Flip every byte of the structural header region (everything before
    // the level-1 stream) through several masks: parse + decode attempts
    // must stay total.
    let f = synth::miranda_like(Dims::d3(12, 12, 12), 23);
    let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
    let bytes = a.as_bytes();
    let header_len = a.l1_range().start;
    for pos in 0..header_len {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut corrupted = bytes.to_vec();
            corrupted[pos] ^= mask;
            try_decode("stz", &corrupted);
        }
    }
}

#[test]
fn swapped_level_blocks_detected() {
    // Swapping two sub-block streams corrupts geometry-dependent counts;
    // decompression must fail or at worst produce a field (never panic).
    let f = synth::miranda_like(Dims::d3(16, 16, 16), 3);
    let a = StzCompressor::new(StzConfig::three_level(1e-3)).compress(&f).unwrap();
    let b2 = a.block_bytes(2, 0).to_vec();
    let b3 = a.block_bytes(3, 0).to_vec();
    if b2.len() != b3.len() {
        // Reconstruct raw bytes with the two streams exchanged: lengths are
        // varint-prefixed, so a swap with different lengths shifts framing
        // and must be caught by the parser or payload validation.
        let raw = a.as_bytes();
        let pos2 = raw.windows(b2.len()).position(|w| w == b2).unwrap();
        let pos3 = raw.windows(b3.len()).position(|w| w == b3).unwrap();
        let mut swapped = raw.to_vec();
        // Overwrite block-2's bytes with a prefix of block-3's (same len).
        let n = b2.len().min(b3.len());
        let (a_range, b_range) = (pos2..pos2 + n, pos3..pos3 + n);
        let tmp: Vec<u8> = swapped[a_range.clone()].to_vec();
        let from_b: Vec<u8> = swapped[b_range.clone()].to_vec();
        swapped[a_range].copy_from_slice(&from_b);
        swapped[b_range].copy_from_slice(&tmp);
        if let Ok(parsed) = StzArchive::<f32>::from_bytes(swapped) {
            let _ = parsed.decompress();
        }
    }
}

// ---------------------------------------------------------------------------
// Crash safety of mutable (v3) containers: kill-at-every-byte sweep.
// ---------------------------------------------------------------------------

mod crash_safety {
    use std::collections::BTreeMap;
    use stz::data::synth;
    use stz::mutate::{journal_cost, replay_prefix, MutableContainer, RecordingBacking};
    use stz::prelude::*;
    use stz::stream::{ContainerReader, MemorySource, PackEntry};

    fn small_entry(seed: u64) -> PackEntry<f32> {
        let f = synth::miranda_like(Dims::d3(8, 8, 8), seed);
        StzCompressor::new(StzConfig::three_level(1e-2)).compress(&f).unwrap().into()
    }

    /// Decoded full-field bytes of every entry, in container order.
    fn decode_all(reader: &ContainerReader<MemorySource>) -> Vec<(String, Vec<u8>)> {
        (0..reader.entry_count())
            .map(|i| {
                let meta = reader.entry_meta(i).unwrap();
                let name = meta.name().to_string();
                let field = reader.entry::<f32>(i).unwrap().decompress().unwrap();
                let mut bytes = Vec::with_capacity(field.nbytes());
                for &v in field.as_slice() {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                (name, bytes)
            })
            .collect()
    }

    /// Drive a full mutation history over a journaling backing, snapshot
    /// the expected container contents after every commit, then replay
    /// the write journal cut at EVERY byte offset. Each interrupted image
    /// must open as one of the committed generations — with every entry
    /// decoding byte-identically to that generation's snapshot — or be
    /// cleanly detected as torn. Never a panic, never a mixed state.
    #[test]
    fn kill_at_every_byte_offset_yields_a_committed_generation_or_clean_torn_error() {
        let mut c = MutableContainer::create(RecordingBacking::new(Vec::new())).unwrap();
        // generation -> expected (name, decoded bytes) per entry.
        let mut snapshots: BTreeMap<u64, Vec<(String, Vec<u8>)>> = BTreeMap::new();
        let snap = |c: &MutableContainer<RecordingBacking>| {
            let image = c.backing().image().to_vec();
            let reader = ContainerReader::open(MemorySource::new(image)).unwrap();
            assert_eq!(reader.generation(), c.generation());
            (c.generation(), decode_all(&reader))
        };
        let (g, s) = snap(&c);
        snapshots.insert(g, s); // generation 1: empty

        c.append("a", &small_entry(1)).unwrap();
        c.append("b", &small_entry(2)).unwrap();
        c.commit().unwrap();
        let (g, s) = snap(&c);
        snapshots.insert(g, s); // generation 2: a, b

        c.replace("a", &small_entry(3)).unwrap();
        c.delete("b").unwrap();
        c.append("c", &small_entry(4)).unwrap();
        c.commit().unwrap();
        let (g, s) = snap(&c);
        snapshots.insert(g, s); // generation 3: a', c

        c.compact().unwrap();
        let (g, s) = snap(&c);
        snapshots.insert(g, s); // generation 4: a', c, dense
        let final_generation = g;

        let (base, journal) = c.into_backing().into_parts();
        let total = journal_cost(&journal);
        let mut seen_generations = std::collections::BTreeSet::new();
        let mut verified = std::collections::BTreeSet::new();
        for budget in 0..=total {
            let image = replay_prefix(&base, &journal, budget);
            match ContainerReader::open(MemorySource::new(image)) {
                Ok(reader) => {
                    let generation = reader.generation();
                    let expected = snapshots.get(&generation).unwrap_or_else(|| {
                        panic!("crash at byte {budget} exposed uncommitted generation {generation}")
                    });
                    let names: Vec<String> = (0..reader.entry_count())
                        .map(|i| reader.entry_meta(i).unwrap().name().to_string())
                        .collect();
                    let expect_names: Vec<String> =
                        expected.iter().map(|(n, _)| n.clone()).collect();
                    assert_eq!(
                        names, expect_names,
                        "crash at byte {budget}: generation {generation} entry table mixed"
                    );
                    seen_generations.insert(generation);
                    // Payload bytes of a committed generation are already
                    // durable in this model, so content only needs one
                    // verification per (generation, footer) pair.
                    if verified.insert((generation, reader.footer_off())) {
                        assert_eq!(
                            &decode_all(&reader),
                            expected,
                            "crash at byte {budget}: generation {generation} decoded differently"
                        );
                    }
                }
                // Before the very first commit completes there is no
                // committed generation to fall back to; the open must
                // still fail cleanly (corrupt/torn), which reaching this
                // arm without panicking demonstrates.
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        !msg.is_empty() && seen_generations.is_empty(),
                        "crash at byte {budget} lost committed generations {seen_generations:?}: {msg}"
                    );
                }
            }
        }
        assert!(
            seen_generations.contains(&final_generation),
            "full replay must surface the final generation"
        );
        assert!(
            seen_generations.len() >= 3,
            "sweep should traverse several generations, saw {seen_generations:?}"
        );
    }

    /// Corrupting both generation slots must be detected as torn — the
    /// reader refuses with a clean diagnostic instead of guessing.
    #[test]
    fn both_slots_torn_is_cleanly_detected() {
        let mut c = MutableContainer::create(RecordingBacking::new(Vec::new())).unwrap();
        c.append("a", &small_entry(7)).unwrap();
        c.commit().unwrap();
        let mut image = c.backing().image().to_vec();
        for byte in &mut image[8..104] {
            *byte ^= 0x5A;
        }
        let err = ContainerReader::open(MemorySource::new(image)).unwrap_err();
        assert!(err.to_string().contains("torn"), "unexpected diagnostic: {err}");
    }

    /// Single-byte corruption anywhere in a committed v3 image must never
    /// panic: the reader opens the surviving generation or errors cleanly,
    /// and decodes either succeed or error (payload CRCs catch the rest).
    #[test]
    fn mutable_container_single_byte_corruption_never_panics() {
        let mut c = MutableContainer::create(RecordingBacking::new(Vec::new())).unwrap();
        c.append("a", &small_entry(11)).unwrap();
        c.append("b", &small_entry(12)).unwrap();
        c.commit().unwrap();
        c.delete("a").unwrap();
        c.commit().unwrap();
        let image = c.backing().image().to_vec();
        let step = (image.len() / 211).max(1);
        for pos in (0..image.len()).step_by(step) {
            let mut corrupted = image.clone();
            corrupted[pos] ^= 0xA5;
            if let Ok(reader) = ContainerReader::open(MemorySource::new(corrupted)) {
                for i in 0..reader.entry_count() {
                    if let Ok(entry) = reader.entry::<f32>(i) {
                        let _ = entry.decompress();
                    }
                }
            }
        }
    }
}
